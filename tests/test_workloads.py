"""Workload validation: every kernel's compiled result equals its native
execution, and the registry behaves."""

import pytest

from repro.compiler import Module
from repro.emu import Emulator
from repro.utils.bits import to_signed
from repro.workloads import workload_names, get_workload, SUITES, \
    suite_workloads
from repro.workloads.graphs import uniform_random_graph, skewed_graph

_SCALE = 0.12


@pytest.mark.parametrize("name", workload_names())
def test_workload_matches_native(name):
    workload = get_workload(name)
    mod, prog = workload.build(_SCALE)
    expected, _arrays = mod.run_native()
    result = Emulator(prog).run(max_insts=4_000_000)
    got = to_signed(Module.read_result(prog, result.memory))
    assert got == expected, name


def test_registry_contents():
    assert set(SUITES) == {"micro", "mem", "gap", "spec2006", "spec2017",
                           "brchar"}
    assert len(SUITES["micro"]) == 2
    assert len(SUITES["mem"]) == 2
    assert len(SUITES["gap"]) == 6
    assert len(SUITES["spec2006"]) == 6
    assert len(SUITES["spec2017"]) == 6
    assert len(SUITES["brchar"]) == 5
    assert len(workload_names()) == 27


def test_registry_unknown_name():
    with pytest.raises(KeyError):
        get_workload("not-a-benchmark")


def test_suite_workloads_ordering():
    gap = suite_workloads("gap")
    assert [w.name for w in gap] == SUITES["gap"]


def test_build_caching():
    workload = get_workload("bfs")
    a = workload.build(0.2)
    b = workload.build(0.2)
    assert a is b
    c = workload.build(0.3)
    assert c is not a


def test_uniform_graph_properties():
    graph = uniform_random_graph(64, 8, seed=3)
    assert graph.num_nodes == 64
    assert len(graph.offsets) == 65
    assert graph.offsets[0] == 0
    assert graph.offsets[-1] == graph.num_edges
    for node in range(64):
        neighbors = graph.neighbors[graph.offsets[node]:
                                    graph.offsets[node + 1]]
        assert neighbors == sorted(neighbors)          # sorted
        assert len(set(neighbors)) == len(neighbors)   # deduplicated
        assert node not in neighbors                   # no self loops


def test_uniform_graph_symmetric():
    graph = uniform_random_graph(48, 6, seed=5, symmetric=True)
    edges = set()
    for u in range(48):
        for e in range(graph.offsets[u], graph.offsets[u + 1]):
            edges.add((u, graph.neighbors[e]))
    assert all((v, u) in edges for (u, v) in edges)


def test_skewed_graph_is_skewed():
    graph = skewed_graph(128, 8, seed=7)
    low = sum(graph.out_degree(n) for n in range(32))
    high = sum(graph.out_degree(n) for n in range(96, 128))
    assert low > high  # low ids attract more edges


def test_graph_determinism():
    a = uniform_random_graph(40, 6, seed=11)
    b = uniform_random_graph(40, 6, seed=11)
    assert a.neighbors == b.neighbors and a.offsets == b.offsets
    c = uniform_random_graph(40, 6, seed=12)
    assert a.neighbors != c.neighbors
