"""Port-based memory system (``mem.model = "ported"``).

Covers the port/MSHR timing model in isolation (merge, stall,
bandwidth, squash survival), the dirty-propagation fix shared with the
flat hierarchy, the hypothesis latency-bounds property, and the
core-level contracts: lockstep-green ported runs across the micro
matrix, MSHR occupancy > 1 on the MLP probe, wrong-path fills visible
to the correct path, and event/counter agreement. The worker-only
service mode (``harness serve --no-api``) rides along at the end.
"""

import json
import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.jobs import SimJob
from repro.mem import (
    Cache,
    MemPort,
    MemoryHierarchy,
    MSHRFile,
    PortedMemorySystem,
)
from repro.obs import (
    CallbackSink,
    MetricsSink,
    Observability,
    run_lockstep,
)
from repro.obs.events import CommitEvent, MemAccessEvent, SquashEvent
from repro.pipeline import O3Core, baseline_config, mssr_config
from repro.service import ServiceThread
from repro.service.store import JobStore
from repro.workloads import get_workload

_LINE = 64


def _port(mshrs=4, ports=2, l1_size=128, l1_assoc=1, l2_size=1024,
          l2_assoc=2):
    l1 = Cache("L1D", l1_size, l1_assoc, _LINE, latency=3)
    l2 = Cache("L2", l2_size, l2_assoc, _LINE, latency=12)
    return MemPort("dport", l1, l2, dram_latency=120, mshrs=mshrs,
                   ports=ports)


# ---------------------------------------------------------------------------
# Cache generalisation
# ---------------------------------------------------------------------------
def test_probe_has_no_side_effects():
    cache = Cache("t", 128, 2, _LINE)
    cache.fill(0)
    hits, misses, tick = cache.hits, cache.misses, cache._tick
    assert cache.probe(0)
    assert not cache.probe(2 * _LINE)
    assert (cache.hits, cache.misses, cache._tick) == (hits, misses, tick)


def test_fill_tracks_victim_and_counts():
    cache = Cache("t", 64, 1, _LINE)          # one line total
    cache.fill(0, dirty=True)
    assert cache.fills == 1
    assert cache.last_victim_line is None     # free way, no victim
    wrote_back = cache.fill(2 * _LINE)
    assert wrote_back
    assert cache.fills == 2
    assert cache.last_victim_line == 0
    assert cache.last_victim_dirty
    cache.fill(2 * _LINE, dirty=True)         # fill-hit: no new victim
    assert cache.fills == 2
    assert cache.last_victim_line is None


def test_mru_replacement_policy():
    cache = Cache("t", 128, 2, _LINE, replacement="mru")
    cache.fill(0)
    cache.fill(2 * _LINE)
    cache.lookup(0)                           # 0 is now most recent
    cache.fill(4 * _LINE)                     # MRU evicts line 0
    assert not cache.probe(0)
    assert cache.probe(2 * _LINE)
    assert cache.probe(4 * _LINE)


def test_callable_replacement_policy():
    # Evict the highest tag: invalid ways first, then by -tag.
    cache = Cache("t", 128, 2, _LINE,
                  replacement=lambda line: (line.valid, -line.tag))
    cache.fill(2 * _LINE)
    cache.fill(6 * _LINE)
    cache.fill(4 * _LINE)                     # evicts tag 6
    assert cache.probe(2 * _LINE)
    assert not cache.probe(6 * _LINE)
    assert cache.probe(4 * _LINE)


def test_unknown_replacement_policy_rejected():
    with pytest.raises(ValueError, match="unknown replacement policy"):
        Cache("t", 128, 2, _LINE, replacement="fifo")


def test_flush_returns_dirty_count():
    cache = Cache("t", 512, 2, _LINE)
    cache.fill(0, dirty=True)
    cache.fill(2 * _LINE, dirty=True)
    cache.fill(5 * _LINE)
    assert cache.flush() == 2
    assert not cache.probe(0)
    assert cache.flush() == 0


# ---------------------------------------------------------------------------
# Dirty propagation (the flat-model write-miss fix, shared by the port)
# ---------------------------------------------------------------------------
def test_store_miss_marks_l2_copy_dirty():
    # Regression: a write miss used to install the L2 copy clean, so the
    # store's dirt vanished once the L1 copy was silently reused.
    hier = MemoryHierarchy(l1_size=128, l1_assoc=2, l1_latency=3,
                           l2_size=1024, l2_assoc=2, l2_latency=12,
                           dram_latency=120)
    hier.access(0x1000, is_write=True)        # miss all the way to DRAM
    assert hier.l2.flush() == 1               # the L2 copy is dirty


def test_l1_dirty_victim_propagates_to_l2():
    # Write-hit dirties only the L1 copy; evicting it must push the
    # dirty state down into the (clean) L2 copy.
    hier = MemoryHierarchy(l1_size=128, l1_assoc=2, l1_latency=3,
                           l2_size=2048, l2_assoc=4, l2_latency=12,
                           dram_latency=120)
    hier.access(0x1000)                       # clean fill everywhere
    hier.access(0x1000, is_write=True)        # L1 write hit: L1 dirty only
    # Two clean reads conflicting in the single L1 set but landing in
    # different L2 sets evict 0x1000 from L1.
    hier.access(0x1040)
    hier.access(0x1080)
    assert not hier.l1.probe(0x1000)
    assert hier.l2.flush() == 1               # dirt arrived in L2


def test_port_propagates_dirty_victim():
    port = _port(l1_size=64, l1_assoc=1, l2_size=2048, l2_assoc=4)
    port.request(0, 0x1000, is_write=True)    # L1+L2 copies dirty
    port.request(200, 0x1040)                 # clean fill evicts 0x1000
    assert not port.l1.probe(0x1000)
    assert port.l2.flush() >= 1


# ---------------------------------------------------------------------------
# MSHR file + port timing
# ---------------------------------------------------------------------------
def test_mshr_file_basics():
    mshrs = MSHRFile(2)
    mshrs.allocate(1, 120)
    mshrs.allocate(2, 50)
    assert mshrs.full() and mshrs.peak == 2
    assert mshrs.earliest() == 50
    assert mshrs.pending(1) == 120
    mshrs.drain(50)
    assert mshrs.occupancy() == 1 and not mshrs.full()
    assert mshrs.pending(2) is None
    with pytest.raises(ValueError):
        MSHRFile(0)


def test_same_line_miss_merges():
    port = _port()
    done = port.request(0, 0x1000)
    assert done == 120                        # cold DRAM miss
    merged = port.request(1, 0x1008)          # same line, fill in flight
    assert merged == done                     # rides the existing fill
    assert port.mshrs.merges == 1
    assert port.l2.misses == 1                # no duplicate L2 probe


def test_merge_checked_before_eager_l1_tags():
    # Fills are eager, so without the merge-first ordering this request
    # would fake an L1 hit (cycle 1 + 3) while the data is in flight.
    port = _port()
    port.request(0, 0x1000)
    assert port.l1.probe(0x1000)              # tags already updated
    assert port.request(1, 0x1000) == 120     # but timing says: wait


def test_mshr_full_stalls_until_earliest_fill():
    port = _port(mshrs=2, ports=8)
    a = port.request(0, 0x1000)
    b = port.request(0, 0x2000)
    assert a == b == 120
    c = port.request(0, 0x3000)               # both MSHRs busy
    assert port.mshrs.stalls == 1
    assert c == 240                           # waits to 120, then DRAM


def test_port_bandwidth_staggers_same_cycle_requests():
    port = _port(ports=1)
    port.l1.fill(0)
    port.l1.fill(_LINE)                       # different L1 sets
    assert port.request(5, 0) == 8            # first of the cycle
    assert port.request(5, _LINE) == 9        # second starts a cycle late


def test_independent_misses_overlap():
    # The whole point of the ported model: two misses in flight cost one
    # DRAM round-trip of wall-clock, not two.
    port = _port(ports=2)
    a = port.request(0, 0x1000)
    b = port.request(0, 0x2000)
    assert a == 120 and b == 120
    assert port.mshrs.peak == 2


def test_mshr_entries_survive_squash():
    # A squash never deallocates MSHR entries: the fill completes and
    # warms the caches for whoever asks next.
    port = _port()
    done = port.request(0, 0x1000)            # wrong-path miss
    # ... the requesting instruction is squashed here; the port hears
    # nothing.  A later same-line request still merges onto the fill,
    assert port.request(10, 0x1000) == done
    assert port.mshrs.merges == 1
    # and after the fill lands the line is simply resident.
    assert port.request(done + 1, 0x1000) == done + 1 + 3
    assert port.l1.hits == 1


# ---------------------------------------------------------------------------
# Latency bounds (hypothesis)
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=127),
                          st.booleans(),
                          st.integers(min_value=0, max_value=3)),
                max_size=120))
def test_request_latency_bounds(ops):
    """Every completion lies in [cycle + L1 hit, queueing + DRAM]."""
    port = _port(mshrs=4, ports=2, l1_size=4 * _LINE, l1_assoc=2,
                 l2_size=16 * _LINE, l2_assoc=2)
    cycle = 0
    horizon = 0                               # max completion seen so far
    for line, is_write, advance in ops:
        cycle += advance
        done = port.request(cycle, line * _LINE, is_write=is_write)
        assert done >= cycle + port.l1.latency
        # start <= max(cycle + bw backlog, earliest in-flight fill) and
        # the worst residency added on top of start is one DRAM trip.
        bw_backlog = (len(ops) - 1) // port.ports
        assert done <= max(horizon, cycle + bw_backlog) \
            + port.dram_latency
        horizon = max(horizon, done)


# ---------------------------------------------------------------------------
# PortedMemorySystem: shared L2, flat-compatible warm/access surface
# ---------------------------------------------------------------------------
def test_l1i_and_l1d_share_one_l2():
    system = PortedMemorySystem()
    assert isinstance(system.l1i, Cache) and isinstance(system.l1d, Cache)
    assert system.iport.l2 is system.dport.l2 is system.l2
    # An instruction fetch warms the unified L2 for the data side.
    delay = system.icache.access(0x4000, 0x4000, cycle=0)
    assert delay == 120                       # cold: DRAM through L2
    assert system.dport.request(500, 0x4000) == 500 + 12   # L2 hit


def test_compat_access_matches_flat_latencies():
    system = PortedMemorySystem(l1d_size=128, l1d_assoc=2, l1d_latency=3,
                                l2_size=1024, l2_assoc=2, l2_latency=12,
                                dram_latency=120)
    assert system.access(0x1000) == 120       # cold
    assert system.access(0x1000) == 3         # L1 hit
    assert system.access(0x1008) == 3         # same line
    system.access(0x1040)
    system.access(0x1080)
    assert system.access(0x1000) == 12        # L1 miss, L2 hit


def test_warm_paths_populate_without_mshr_traffic():
    system = PortedMemorySystem()
    system.warm(0x2000, is_write=True)
    system.warm_inst(0x8000)
    assert system.l1d.probe(0x2000) and system.l2.probe(0x2000)
    assert system.l1i.probe(0x8000) and system.l2.probe(0x8000)
    assert system.dport.mshrs.occupancy() == 0
    assert system.iport.mshrs.occupancy() == 0
    stats = system.stats()
    assert stats["dram_accesses"] == 0        # warmup is not timed traffic
    assert {"mshr_merges", "mshr_stalls", "mshr_peak"} <= set(stats)


def test_ported_model_rejects_legacy_icache_knob():
    with pytest.raises(ValueError, match="icache_lines"):
        baseline_config(frontend={"decoupled": True, "icache_lines": 64},
                        mem={"model": "ported"})


# ---------------------------------------------------------------------------
# Core-level: lockstep correctness, MLP, wrong-path fills, events
# ---------------------------------------------------------------------------
_SCALE = 0.05

_MICROS = ["nested-mispred", "linear-mispred", "ptr-chase",
           "ptr-chase-dep"]


def _ported_config(kind, **mem):
    overrides = {"model": "ported"}
    overrides.update(mem)
    if kind == "mssr":
        return mssr_config(num_streams=2, mem=overrides)
    return baseline_config(mem=overrides)


@pytest.mark.parametrize("kind", ["baseline", "mssr"])
@pytest.mark.parametrize("name", _MICROS)
def test_ported_lockstep_micro_matrix(name, kind):
    _mod, prog = get_workload(name).build(_SCALE)
    outcome = run_lockstep(prog, _ported_config(kind))
    assert outcome.ok, "%s/%s:\n%s" % (name, kind,
                                       outcome.divergence.format())


def test_ported_lockstep_with_tiny_caches():
    # Small caches + 1 MSHR + 1 port: constant eviction, merging and
    # stalling; squash reuse must still be architecturally invisible.
    _mod, prog = get_workload("nested-mispred").build(_SCALE)
    config = _ported_config("mssr", l1d_size=1024, l2_size=8192,
                            mshrs=1, ports=1)
    outcome = run_lockstep(prog, config)
    assert outcome.ok, outcome.divergence.format()


def test_ptr_chase_exposes_mlp():
    _mod, prog = get_workload("ptr-chase").build(0.1)
    result = O3Core(prog, _ported_config("baseline")).run()
    stats = result.stats
    assert stats.mem_mshr_peak > 1            # overlapping misses
    assert stats.mem_dram_accesses > 0
    _mod, dep_prog = get_workload("ptr-chase-dep").build(0.1)
    dep = O3Core(dep_prog, _ported_config("baseline")).run()
    # The dependent chain can't overlap its misses and pays for it.
    assert stats.mem_mshr_peak > dep.stats.mem_mshr_peak
    assert dep.stats.cycles > result.stats.cycles


def test_wrong_path_fill_visible_to_correct_path():
    """A squashed-stream load's fill warms the hierarchy: some line is
    first touched (L2/DRAM) by a never-committed seq, and a later
    committed access to it hits."""
    _mod, prog = get_workload("mcf").build(0.3)
    events = []
    obs = Observability(sinks=[CallbackSink(events.append)])
    result = O3Core(prog, _ported_config("mssr"), obs=obs).run()
    assert result.stats.mem_wrong_path_insts > 0

    squashed, committed = set(), set()
    by_line = {}
    for event in events:
        kind = type(event)
        if kind is SquashEvent:
            squashed.update(event.squashed_seqs)
        elif kind is CommitEvent:
            committed.add(event.seq)
        elif kind is MemAccessEvent:
            by_line.setdefault(event.addr // _LINE, []).append(event)

    warmed = False
    for accesses in by_line.values():
        first = accesses[0]
        if first.level not in ("l2", "dram"):
            continue
        if first.seq not in squashed or first.seq in committed:
            continue
        if any(later.seq in committed
               and later.level in ("l1", "l2", "mshr")
               for later in accesses[1:]):
            warmed = True
            break
    assert warmed


def test_metrics_sink_recomputes_mem_counters():
    _mod, prog = get_workload("ptr-chase").build(0.08)
    metrics = MetricsSink()
    obs = Observability(sinks=[metrics])
    result = O3Core(prog, _ported_config("mssr"), obs=obs).run()
    assert result.stats.mem_accesses > 0
    assert metrics.verify(result.stats) == []


# ---------------------------------------------------------------------------
# Worker-only service (harness serve --no-api)
# ---------------------------------------------------------------------------
def test_serve_no_api_drains_shared_store(tmp_path):
    directory = str(tmp_path)
    store = JobStore(directory)
    store.submit([("smoke", SimJob(workload="linear-mispred",
                                   kind="baseline", scale=0.02))])
    store.close()

    endpoint_path = os.path.join(directory, "endpoint.json")
    with ServiceThread(directory, workers=1, no_api=True) as svc:
        assert svc.url is None
        with open(endpoint_path, encoding="utf-8") as handle:
            endpoint = json.load(handle)
        assert endpoint["api"] is False
        assert "url" not in endpoint and "port" not in endpoint

        check = JobStore(directory)
        deadline = time.time() + 60.0
        while time.time() < deadline:
            if check.state_counts().get("done") == 1:
                break
            time.sleep(0.2)
        assert check.state_counts() == {"done": 1}
        check.close()
    assert not os.path.exists(endpoint_path)  # removed on shutdown
