"""Experiment harness plumbing."""

from repro.analysis import (
    run_workload, config_for, geomean_improvement, format_table,
    table2_storage, table4_synthesis,
)
from repro.analysis.experiments import speedup, distance_cdf, \
    multi_stream_fraction
from repro.analysis.tables import pct
import pytest


def test_config_for():
    assert config_for("baseline").mssr is None
    mssr = config_for("mssr", streams=2, wpb=8, log=32)
    assert mssr.mssr.num_streams == 2
    assert mssr.mssr.wpb_entries == 8
    assert mssr.mssr.squash_log_entries == 32
    ri = config_for("ri", sets=128, ways=2)
    assert ri.ri.num_sets == 128 and ri.ri.assoc == 2
    with pytest.raises(ValueError):
        config_for("quantum")


def test_run_workload_caches():
    a = run_workload("linear-mispred", "baseline", scale=0.05)
    b = run_workload("linear-mispred", "baseline", scale=0.05)
    assert a is b
    assert a.committed_insts > 0


def test_speedup_sign():
    class S:
        def __init__(self, cycles):
            self.cycles = cycles
    assert speedup(S(90), S(100)) > 0
    assert speedup(S(110), S(100)) < 0


def test_geomean():
    assert geomean_improvement([]) == 0.0
    assert abs(geomean_improvement([0.1, 0.1]) - 0.1) < 1e-12
    mixed = geomean_improvement([0.21, -0.1])
    assert abs(mixed - (((1.21 * 0.9) ** 0.5) - 1)) < 1e-12


def test_distance_cdf():
    cdf = distance_cdf({1: 50, 2: 30, 4: 20})
    assert cdf == [(1, 0.5), (2, 0.8), (4, 1.0)]
    assert distance_cdf({}) == []


def test_multi_stream_fraction():
    fractions, avg = multi_stream_fraction({
        "a": (0.8, 0.1, 0.1),
        "b": (1.0, 0.0, 0.0),
    })
    assert abs(fractions["a"] - 0.2) < 1e-12
    assert abs(avg - 0.1) < 1e-12


def test_format_table():
    text = format_table(["name", "value"], [["x", 1.5], ["yy", "2"]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert "1.500" in text


def test_pct():
    assert pct(0.123) == "+12.30%"
    assert pct(-0.01) == "-1.00%"


def test_hw_tables_accessible():
    assert round(table2_storage()["total_kb"], 2) == 3.53
    synth = table4_synthesis()
    assert len(synth["reconvergence_detection"]) == 3
    assert len(synth["reuse_test"]) == 3
