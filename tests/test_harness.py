"""The parallel, disk-persistent simulation harness."""

import io
import json

import pytest

from repro.harness import (
    JobFailure,
    ResultCache,
    SimJob,
    clear_memo,
    code_fingerprint,
    execute,
    last_report,
    run_batch,
    submit,
)
from repro.harness.cli import main as cli_main
from repro.harness.runner import default_jobs
from repro.pipeline.stats import SimStats

_SCALE = 0.05


def _stats_blob(stats):
    return json.dumps(stats.as_dict(), sort_keys=True)


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    """Isolated disk cache + env for one test."""
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return ResultCache(directory=str(cache_dir))


# ---------------------------------------------------------------------------
# Layered caching
# ---------------------------------------------------------------------------
def test_memo_returns_identical_object(tmp_cache):
    job = SimJob("linear-mispred", "baseline", _SCALE)
    a = submit([job])[job]
    b = submit([job])[job]
    assert a is b
    assert last_report().memo_hits == 1
    assert last_report().executed == 0


def test_batch_dedupes_identical_jobs(tmp_cache):
    jobs = [SimJob("linear-mispred", "baseline", _SCALE)
            for _ in range(5)]
    clear_memo()
    report = run_batch(jobs, cache=tmp_cache)
    assert report.total == 5
    assert report.executed == 1
    stats = {id(report.results[job]) for job in jobs}
    assert len(stats) == 1


def test_disk_cache_survives_memo_clear(tmp_cache):
    job = SimJob("linear-mispred", "mssr", _SCALE,
                 {"streams": 2, "wpb": 16, "log": 64})
    clear_memo()
    first = run_batch([job], cache=tmp_cache)
    assert first.executed == 1
    assert tmp_cache.stores == 1

    clear_memo()   # simulate a fresh process
    second = run_batch([job], cache=tmp_cache)
    assert second.executed == 0
    assert second.disk_hits == 1
    assert tmp_cache.hits == 1
    assert _stats_blob(first.results[job]) == \
        _stats_blob(second.results[job])


def test_warm_cache_reruns_fig10_with_zero_simulations(tmp_cache):
    """Acceptance: a warm disk cache turns the Figure 10 sweep into
    pure cache hits — zero new simulations on a rerun."""
    from repro.analysis import fig10_ipc_sweep

    kwargs = dict(scale=_SCALE, suites=("micro",),
                  configs=((1, 16), (2, 16)))
    clear_memo()
    cold = fig10_ipc_sweep(**kwargs)
    cold_report = last_report()
    assert cold_report.executed == cold_report.total > 0

    clear_memo()   # fresh process: only the disk cache remains warm
    warm = fig10_ipc_sweep(**kwargs)
    warm_report = last_report()
    assert warm_report.executed == 0
    assert warm_report.disk_hits == warm_report.total
    assert cold == warm


def test_code_fingerprint_partitions_cache(tmp_path):
    job = SimJob("linear-mispred", "baseline", _SCALE)
    stats = execute(job).as_dict()
    old = ResultCache(directory=str(tmp_path), fingerprint="old-code")
    old.put(job, stats)
    assert old.get(job) == stats
    new = ResultCache(directory=str(tmp_path), fingerprint="new-code")
    assert new.get(job) is None   # changed code never reads stale results
    assert new.misses == 1
    assert len(code_fingerprint()) == 16


def test_cache_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "off")
    assert ResultCache.from_env() is None
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    cache = ResultCache.from_env()
    assert cache is not None and cache.directory == "/tmp/somewhere"


# ---------------------------------------------------------------------------
# Parallel execution
# ---------------------------------------------------------------------------
def test_parallel_matches_serial_byte_for_byte():
    jobs = [SimJob("linear-mispred", "mssr", _SCALE,
                   {"streams": s, "wpb": 16, "log": 64})
            for s in (1, 2, 4)]
    serial = run_batch(jobs, n_jobs=1, cache=False, memo=None)
    parallel = run_batch(jobs, n_jobs=4, cache=False, memo=None)
    assert parallel.executed == len(jobs)
    for job in jobs:
        assert _stats_blob(serial.results[job]) == \
            _stats_blob(parallel.results[job])


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert default_jobs() == 6
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() >= 1
    monkeypatch.setenv("REPRO_JOBS", "garbage")
    assert default_jobs() == 1


# ---------------------------------------------------------------------------
# Error capture and guards
# ---------------------------------------------------------------------------
def test_job_errors_are_captured_per_job():
    good = SimJob("linear-mispred", "baseline", _SCALE)
    bad = SimJob("no-such-workload", "baseline", _SCALE)
    report = run_batch([good, bad], cache=False, memo=None, strict=False)
    assert isinstance(report.results[good], SimStats)
    assert report.results[bad] is None
    assert "no-such-workload" in report.errors[bad]

    with pytest.raises(JobFailure) as err:
        run_batch([good, bad], cache=False, memo=None)
    assert bad in err.value.errors


def test_max_cycles_guard():
    job = SimJob("linear-mispred", "baseline", _SCALE, max_cycles=10)
    report = run_batch([job], cache=False, memo=None, strict=False)
    assert report.results[job] is None
    assert "cycle budget exhausted" in report.errors[job]


def test_progress_callback(tmp_cache):
    jobs = [SimJob("linear-mispred", "baseline", _SCALE),
            SimJob("nested-mispred", "baseline", _SCALE)]
    seen = []
    clear_memo()
    run_batch(jobs, cache=tmp_cache,
              progress=lambda done, total, job, source:
              seen.append((done, total, source)))
    assert [s[:2] for s in seen] == [(1, 2), (2, 2)]
    assert all(s[2] in ("memo", "disk", "run") for s in seen)


# ---------------------------------------------------------------------------
# Shared-image grouping
# ---------------------------------------------------------------------------
def _mssr_grid(workload, streams):
    return [SimJob(workload, "mssr", _SCALE,
                   {"streams": s, "wpb": 16, "log": 64})
            for s in streams]


def _clear_workload_caches(*names):
    """Forked workers inherit the parent's build cache; drop it so a
    fresh pool pays (and therefore counts) its builds."""
    from repro.workloads.registry import get_workload
    for name in names:
        get_workload(name).clear_cache()


def test_group_jobs_shapes():
    from repro.harness.runner import group_jobs

    one_image = _mssr_grid("linear-mispred", (1, 2, 4))
    # Singletons when sharing is off.
    assert group_jobs(one_image, 4, shared=False) \
        == [[job] for job in one_image]
    # One image over many slots fans out into per-slot chunks...
    groups = group_jobs(one_image, 4)
    assert [len(g) for g in groups] == [1, 1, 1]
    # ...and serialises into one group when slots are scarce.
    assert [len(g) for g in group_jobs(one_image, 1)] == [3]
    # Two images split the slots between them.
    two_images = one_image + _mssr_grid("nested-mispred", (1, 2, 4))
    groups = group_jobs(two_images, 2)
    assert len(groups) == 2
    assert all(len(g) == 3 for g in groups)
    for group in groups:
        assert len({(j.workload, j.scale) for j in group}) == 1
    # Every job appears exactly once.
    flat = [j for g in groups for j in g]
    assert sorted(j.job_hash() for j in flat) \
        == sorted(j.job_hash() for j in two_images)


def test_shared_images_batched_equivalence_and_fewer_loads():
    """Acceptance: batched and unbatched parallel runs produce
    byte-identical stats for the same job hashes, and batching pays
    strictly fewer program builds."""
    jobs = _mssr_grid("linear-mispred", (1, 2, 3, 4))

    _clear_workload_caches("linear-mispred")
    batched = run_batch(jobs, n_jobs=2, cache=False, memo=None,
                        shared_images=True)
    _clear_workload_caches("linear-mispred")
    unbatched = run_batch(jobs, n_jobs=2, cache=False, memo=None,
                          shared_images=False)

    assert batched.executed == unbatched.executed == len(jobs)
    for job in jobs:
        assert _stats_blob(batched.results[job]) == \
            _stats_blob(unbatched.results[job])
    # 4 jobs / 2 slots: 2 shared groups pay 2 builds; 4 singleton
    # workers pay 4.
    assert batched.groups == 2 and unbatched.groups == 4
    assert batched.program_loads == 2
    assert unbatched.program_loads == 4


def test_serial_path_counts_program_loads():
    jobs = _mssr_grid("linear-mispred", (1, 2))
    _clear_workload_caches("linear-mispred")
    report = run_batch(jobs, n_jobs=1, cache=False, memo=None)
    assert report.groups == 1
    assert report.program_loads == 1    # one image, built once


def test_shared_images_env_default(monkeypatch):
    from repro.harness.runner import default_shared_images

    monkeypatch.delenv("REPRO_SHARED_IMAGES", raising=False)
    assert default_shared_images() is True
    monkeypatch.setenv("REPRO_SHARED_IMAGES", "0")
    assert default_shared_images() is False


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_run_summary(tmp_cache):
    out = io.StringIO()
    rc = cli_main(["run", "--workload", "linear-mispred", "--kind",
                   "mssr", "--streams", "2", "--scale", str(_SCALE)],
                  out=out)
    assert rc == 0
    text = out.getvalue()
    assert "linear-mispred/mssr streams=2" in text
    assert "IPC=" in text
    assert "# jobs=1" in text


def test_cli_run_json(tmp_cache):
    out = io.StringIO()
    rc = cli_main(["run", "--workload", "linear-mispred", "--scale",
                   str(_SCALE), "--json"], out=out)
    assert rc == 0
    payload = json.loads(out.getvalue().rsplit("#", 1)[0])
    assert payload[0]["job"]["workload"] == "linear-mispred"
    assert payload[0]["stats"]["committed_insts"] > 0


def test_cli_rejects_unknown_workload(tmp_cache, capsys):
    rc = cli_main(["run", "--workload", "no-such-thing"], out=io.StringIO())
    assert rc == 2
    assert "unknown workload" in capsys.readouterr().err


def test_cli_list_and_cache(tmp_cache, capsys):
    out = io.StringIO()
    assert cli_main(["list", "--suite", "micro"], out=out) == 0
    assert "linear-mispred" in out.getvalue()

    out = io.StringIO()
    assert cli_main(["cache"], out=out) == 0
    assert "fingerprint" in out.getvalue()


# ---------------------------------------------------------------------------
# Sharded cache layout + flat-layout migration
# ---------------------------------------------------------------------------
def test_put_writes_sharded_layout(tmp_cache):
    from repro.harness.cache import shard_of

    job = SimJob("linear-mispred", "baseline", _SCALE)
    tmp_cache.put(job, {"ipc": 1.0})
    job_hash = job.job_hash()
    expected = (f"{tmp_cache.directory}/{tmp_cache.fingerprint}/"
                f"{shard_of(job_hash)}/{job_hash}.json")
    import os
    assert os.path.exists(expected)
    assert tmp_cache.entries() == 1
    assert tmp_cache.flat_entries() == 0
    assert tmp_cache.get(job) == {"ipc": 1.0}


def test_flat_layout_read_through_and_migrate(tmp_cache):
    import os

    job = SimJob("linear-mispred", "baseline", _SCALE)
    # Plant an entry in the pre-sharding flat layout by hand.
    sub = os.path.join(tmp_cache.directory, tmp_cache.fingerprint)
    os.makedirs(sub, exist_ok=True)
    with open(os.path.join(sub, job.job_hash() + ".json"), "w") as fh:
        json.dump({"stats": {"ipc": 2.5}}, fh)

    assert tmp_cache.flat_entries() == 1
    assert tmp_cache.entries() == 1
    # Read-through serves the legacy entry without migration...
    assert tmp_cache.get(job) == {"ipc": 2.5}
    # ...and migrate moves it into its shard, preserving the payload.
    assert tmp_cache.migrate() == 1
    assert tmp_cache.flat_entries() == 0
    assert tmp_cache.entries() == 1
    assert tmp_cache.get(job) == {"ipc": 2.5}
    assert tmp_cache.migrate() == 0          # idempotent


def test_prune_and_orphans_walk_shards(tmp_cache):
    import os

    job = SimJob("linear-mispred", "baseline", _SCALE)
    tmp_cache.put(job, {"ipc": 1.0})
    # A stale fingerprint with one sharded and one flat entry.
    stale = os.path.join(tmp_cache.directory, "deadbeefdeadbeef")
    os.makedirs(os.path.join(stale, "ab"), exist_ok=True)
    for path in (os.path.join(stale, "ab", "abcd.json"),
                 os.path.join(stale, "1234.json")):
        with open(path, "w") as fh:
            json.dump({"stats": {}}, fh)

    orphans, stale_count = tmp_cache.orphaned()
    assert orphans == 2 and stale_count == 1
    # Age-based pruning reaches entries inside shard directories.
    removed = tmp_cache.prune(max_age_days=0.0)
    assert removed == 3
    assert tmp_cache.entries() == 0


def test_cli_cache_migrate(tmp_cache, capsys):
    import os

    job = SimJob("linear-mispred", "baseline", _SCALE)
    sub = os.path.join(tmp_cache.directory, tmp_cache.fingerprint)
    os.makedirs(sub, exist_ok=True)
    with open(os.path.join(sub, job.job_hash() + ".json"), "w") as fh:
        json.dump({"stats": {"ipc": 3.0}}, fh)

    out = io.StringIO()
    assert cli_main(["cache", "migrate"], out=out) == 0
    assert "migrated 1 flat-layout result(s)" in out.getvalue()
    assert tmp_cache.flat_entries() == 0
    assert tmp_cache.get(job) == {"ipc": 3.0}
