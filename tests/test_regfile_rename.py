"""Physical register file ownership and the RGID rename table."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Op, Instruction
from repro.isa.registers import NUM_ARCH_REGS
from repro.pipeline.dyninst import DynInst
from repro.pipeline.regfile import PhysRegFile
from repro.pipeline.rename import RenameTable, NULL_RGID


def _dyn(seq, dest_areg, srcs=()):
    inst = Instruction(Op.ADDI, dest=dest_areg, srcs=(srcs or (1,)),
                       imm=0, pc=0x1000 + 4 * seq)
    return DynInst(seq, inst.pc, inst, block_id=0, fetch_cycle=0)


def test_initial_conservation():
    rf = PhysRegFile(64, NUM_ARCH_REGS)
    assert rf.check_conservation()
    assert rf.num_free == 64 - NUM_ARCH_REGS


def test_allocate_exhaustion():
    rf = PhysRegFile(NUM_ARCH_REGS + 2, NUM_ARCH_REGS)
    a = rf.allocate()
    b = rf.allocate()
    assert a is not None and b is not None
    assert rf.allocate() is None
    rf.free(a)
    assert rf.allocate() == a


def test_double_free_asserts():
    rf = PhysRegFile(64, NUM_ARCH_REGS)
    preg = rf.allocate()
    rf.free(preg)
    with pytest.raises(AssertionError):
        rf.free(preg)


def test_state_transitions():
    rf = PhysRegFile(64, NUM_ARCH_REGS)
    preg = rf.allocate()
    assert rf.state_of(preg) == "in-flight"
    rf.mark_reserved(preg)
    assert rf.state_of(preg) == "reserved"
    rf.mark_in_flight(preg)
    rf.mark_arch(preg)
    assert rf.state_of(preg) == "arch"
    rf.free(preg)
    assert rf.check_conservation()


@given(st.lists(st.sampled_from(["alloc", "free"]), max_size=100))
def test_conservation_under_random_ops(ops):
    rf = PhysRegFile(40, NUM_ARCH_REGS)
    live = []
    for op in ops:
        if op == "alloc":
            preg = rf.allocate()
            if preg is not None:
                live.append(preg)
        elif live:
            rf.free(live.pop())
        assert rf.check_conservation()
    counts = rf.count_states()
    assert counts["in-flight"] == len(live)


# ---------------------------------------------------------------------------
# RenameTable / RGIDs
# ---------------------------------------------------------------------------
def _table(rgid_bits=6):
    rf = PhysRegFile(96, NUM_ARCH_REGS)
    return RenameTable(rf, rgid_bits=rgid_bits, track_rgids=True), rf


def test_rename_allocates_fresh_rgid():
    rat, _rf = _table()
    dyn = _dyn(0, dest_areg=5)
    assert rat.rename_dest(dyn)
    assert dyn.dest_rgid == 1
    assert rat.lookup_rgid(5) == 1
    assert rat.lookup(5) == dyn.dest_preg
    dyn2 = _dyn(1, dest_areg=5)
    rat.rename_dest(dyn2)
    assert dyn2.dest_rgid == 2


def test_rollback_restores_mapping_but_not_counter():
    rat, _rf = _table()
    dyn = _dyn(0, dest_areg=5)
    rat.rename_dest(dyn)
    rat.rollback(dyn)
    assert rat.lookup(5) == 5          # initial identity mapping
    assert rat.lookup_rgid(5) == 0
    # The global counter is NOT rolled back: the next rename must get a
    # fresh RGID (the no-aliasing property of Section 3.1).
    dyn2 = _dyn(1, dest_areg=5)
    rat.rename_dest(dyn2)
    assert dyn2.dest_rgid == 2


def test_apply_reuse_forwards_rgid():
    rat, rf = _table()
    dyn = _dyn(0, dest_areg=5)
    rat.rename_dest(dyn)
    reuse_preg = rf.allocate()
    consumer = _dyn(1, dest_areg=5)
    rat.apply_reuse(consumer, reuse_preg, dyn.dest_rgid)
    assert rat.lookup(5) == reuse_preg
    assert rat.lookup_rgid(5) == dyn.dest_rgid  # forwarded, not fresh


def test_rgid_overflow_returns_null():
    rat, _rf = _table(rgid_bits=2)     # limit = 4, usable 1..3
    rgids = []
    for seq in range(5):
        dyn = _dyn(seq, dest_areg=7)
        rat.rename_dest(dyn)
        rgids.append(dyn.dest_rgid)
    assert rgids[:3] == [1, 2, 3]
    assert rgids[3] == NULL_RGID
    assert rat.overflow_events >= 1


def test_rgid_reset_starts_new_epoch():
    rat, _rf = _table(rgid_bits=2)
    stale = []
    for seq in range(3):
        dyn = _dyn(seq, dest_areg=7)
        rat.rename_dest(dyn)
        stale.append(dyn.dest_rgid)
    rat.reset_rgids()
    assert rat.overflow_events == 0
    dyn = _dyn(10, dest_areg=7)
    rat.rename_dest(dyn)
    # Fresh epoch: can never alias a pre-reset RGID.
    assert dyn.dest_rgid not in stale
    assert dyn.dest_rgid != NULL_RGID
    # But the hardware 6-bit value restarts from 1.
    assert rat.hardware_rgid(dyn.dest_rgid) == 1


@given(st.lists(st.tuples(st.integers(1, 31),
                          st.sampled_from(["rename", "rollback"])),
                max_size=64))
def test_rgid_uniqueness_per_areg(events):
    """No two rename events of the same architectural register may ever
    receive the same (non-null) RGID, regardless of rollbacks."""
    rat, _rf = _table(rgid_bits=8)
    issued = {}
    seq = 0
    last = {}
    for areg, kind in events:
        if kind == "rename":
            dyn = _dyn(seq, dest_areg=areg)
            seq += 1
            if not rat.rename_dest(dyn):
                continue
            if dyn.dest_rgid != NULL_RGID:
                assert dyn.dest_rgid not in issued.get(areg, set())
                issued.setdefault(areg, set()).add(dyn.dest_rgid)
            last[areg] = dyn
        elif areg in last:
            rat.rollback(last.pop(areg))
