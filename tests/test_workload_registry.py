"""Workload registry semantics and SimJob hashing determinism."""

import pytest

from repro.harness import SimJob
from repro.workloads.registry import (
    SUITES,
    get_workload,
    register,
    suite_names,
    unregister,
)


def _dummy_builder(scale):
    return ("module", "program-%s" % scale)


def test_duplicate_registration_rejected():
    register("zz-registry-test", "micro")(_dummy_builder)
    try:
        with pytest.raises(ValueError, match="duplicate workload"):
            register("zz-registry-test", "micro")(_dummy_builder)
        # A duplicate name is rejected even from a different suite.
        with pytest.raises(ValueError, match="duplicate workload"):
            register("zz-registry-test", "gap")(_dummy_builder)
    finally:
        unregister("zz-registry-test")
    assert "zz-registry-test" not in suite_names("micro")


def test_register_creates_new_suites():
    register("zz-suite-test", "zz-custom-suite")(_dummy_builder)
    try:
        assert suite_names("zz-custom-suite") == ["zz-suite-test"]
    finally:
        unregister("zz-suite-test")
        del SUITES["zz-custom-suite"]


def test_unregister_unknown():
    with pytest.raises(KeyError):
        unregister("zz-never-registered")


def test_build_caches_per_scale():
    workload = get_workload("linear-mispred")
    a = workload.build(0.05)
    b = workload.build(0.05)
    c = workload.build(0.05000000001)   # rounds to the same key
    d = workload.build(0.06)
    assert a is b
    assert a is c
    assert d is not a


def test_suite_names_ordering_and_isolation():
    names = suite_names("micro")
    # Registration order in workloads/microbench.py.
    assert names == ["nested-mispred", "linear-mispred"]
    # Callers get a copy, not the registry's own list.
    names.append("intruder")
    assert "intruder" not in suite_names("micro")


# ---------------------------------------------------------------------------
# SimJob hashing determinism
# ---------------------------------------------------------------------------
def test_simjob_hash_deterministic():
    a = SimJob("bfs", "mssr", 0.12, {"streams": 4, "wpb": 16, "log": 64})
    b = SimJob("bfs", "mssr", 0.12, {"log": 64, "wpb": 16, "streams": 4})
    assert a == b
    assert a.job_hash() == b.job_hash()
    assert hash(a) == hash(b)


def test_simjob_hash_distinguishes_params():
    base = SimJob("bfs", "mssr", 0.12, {"streams": 4, "wpb": 16})
    assert base.job_hash() != SimJob(
        "bfs", "mssr", 0.12, {"streams": 2, "wpb": 16}).job_hash()
    assert base.job_hash() != SimJob(
        "cc", "mssr", 0.12, {"streams": 4, "wpb": 16}).job_hash()
    assert base.job_hash() != SimJob(
        "bfs", "mssr", 0.13, {"streams": 4, "wpb": 16}).job_hash()
    assert SimJob("bfs", "baseline", 0.12).job_hash() != SimJob(
        "bfs", "dir", 0.12).job_hash()


def test_simjob_guards_not_hashed():
    # Safety guards change failure behaviour, never successful results,
    # so they must not fragment the cache key space.
    plain = SimJob("bfs", "baseline", 0.12)
    guarded = SimJob("bfs", "baseline", 0.12, max_cycles=10 ** 9,
                     wall_seconds=3600)
    assert plain.job_hash() == guarded.job_hash()


def test_simjob_rejects_bad_specs():
    with pytest.raises(ValueError, match="unknown config kind"):
        SimJob("bfs", "quantum", 0.1)
    with pytest.raises(ValueError, match="not valid for kind"):
        SimJob("bfs", "ri", 0.1, {"streams": 4})
    with pytest.raises(ValueError, match="not valid for kind"):
        SimJob("bfs", "baseline", 0.1, {"sets": 64})
