"""Compiler stress: register spilling, deep nesting, leaf allocation."""

from repro.compiler import Module, array_ref
from repro.compiler.codegen import FunctionCompiler
from repro.emu import Emulator
from repro.utils.bits import to_signed

import ast
import textwrap
import inspect

from repro.isa.assembler import Assembler


def many_locals(a, b):
    """More locals than the 12 callee-saved registers: forces stack
    slots for the overflow."""
    v0 = a + 1
    v1 = b + 2
    v2 = v0 * 3
    v3 = v1 * 5
    v4 = v2 - v3
    v5 = v4 ^ v0
    v6 = v5 + v1
    v7 = v6 * 7
    v8 = v7 - v2
    v9 = v8 + v3
    v10 = v9 ^ v4
    v11 = v10 + v5
    v12 = v11 * 11
    v13 = v12 - v6
    v14 = v13 + v7
    v15 = v14 ^ v8
    for i in range(4):
        v15 += v0 + v1 + v2 + v3
        v14 -= v9 + v10
        v0 += 1
    return v15 + v14 + v13 + v12 + v11 + v10 + v0


def deep_nesting(x):
    result = 0
    if x > 0:
        if x > 10:
            if x > 100:
                if x > 1000:
                    result = 4
                else:
                    result = 3
            else:
                result = 2
        else:
            result = 1
    else:
        result = -1
    while result < 50:
        if result & 1:
            result = result * 3 + 1
        else:
            result = result + 7
    return result


def leaf_fn(x):
    y = x * 3
    z = y + 7
    return z ^ x


def caller(a):
    total = 0
    for i in range(6):
        total += leaf_fn(a + i)
    return total


def _check(funcs, main, args):
    mod = Module()
    for func in funcs:
        mod.add_function(func)
    prog = mod.build(main, args)
    expected, _ = mod.run_native()
    result = Emulator(prog).run(max_insts=2_000_000)
    got = to_signed(Module.read_result(prog, result.memory))
    assert got == expected, (main, got, expected)
    return prog


def test_spilled_locals():
    _check([many_locals], "many_locals", [37, -11])
    _check([many_locals], "many_locals", [-123456789, 987654321])


def test_spill_produces_stack_traffic():
    prog = _check([many_locals], "many_locals", [1, 2])
    text = prog.disassemble()
    # Overflow locals are addressed relative to sp.
    assert "ld" in text and "sp" in text


def test_deep_nesting():
    for x in (-5, 5, 50, 500, 5000):
        _check([deep_nesting], "deep_nesting", [x])


def test_leaf_function_is_frameless():
    mod = Module()
    mod.add_function(leaf_fn)
    mod.add_function(caller)
    prog = mod.build("caller", [9])
    # The leaf body must contain no sp adjustment or stack accesses.
    lines = prog.disassemble().splitlines()
    body = []
    inside = False
    for line in lines:
        if line.strip() == "fn_leaf_fn:":
            inside = True
            continue
        if inside and line.strip().startswith("fn_"):
            break
        if inside:
            body.append(line)
    assert body, "leaf function not found in listing"
    assert all("sp" not in line for line in body), body


def test_leaf_call_results_correct():
    _check([leaf_fn, caller], "caller", [11])


def test_analysis_detects_leaf():
    source = textwrap.dedent(inspect.getsource(leaf_fn))
    func_def = ast.parse(source).body[0]

    class _FakeModule:
        @staticmethod
        def function_names():
            return {"leaf_fn"}

    compiler = FunctionCompiler(_FakeModule(), func_def, Assembler())
    assert compiler.is_leaf
    assert compiler.frame_size == 0
    assert not compiler.stack_locals

    caller_src = textwrap.dedent(inspect.getsource(caller))
    caller_def = ast.parse(caller_src).body[0]

    class _FakeModule2:
        @staticmethod
        def function_names():
            return {"leaf_fn", "caller"}

    compiler2 = FunctionCompiler(_FakeModule2(), caller_def, Assembler())
    assert not compiler2.is_leaf
    assert compiler2.frame_size > 0
