"""Master invariant: squash reuse never changes architectural results.

Every workload runs on the O3 core under baseline, MSSR and RI and the
final registers + memory must equal the functional emulator's. This is
the test that catches register-lifetime and RGID-soundness bugs.

Setting ``REPRO_LOCKSTEP=1`` switches every cosimulation to the deep
mode: the emulator is stepped commit-by-commit alongside the core
(:func:`repro.obs.run_lockstep`), so a divergence is reported at the
exact first wrong commit instead of as a final-state diff.
"""

import pytest

from repro.config import envreg
from repro.emu import Emulator
from repro.obs import run_lockstep
from repro.pipeline import O3Core, baseline_config, mssr_config, ri_config
from repro.workloads import get_workload

_SCALE = 0.08

#: Opt-in deep mode: lockstep-check every commit (slower, more precise).
_LOCKSTEP = envreg.get("REPRO_LOCKSTEP")

# A representative subset per scheme keeps runtime reasonable; the full
# matrix runs in the benchmark suite.
_BASELINE_SET = ["nested-mispred", "bfs", "tc", "xz", "deepsjeng",
                 "omnetpp", "perlbench"]
_MSSR_SET = ["nested-mispred", "linear-mispred", "bfs", "cc", "xz",
             "astar", "leela", "exchange2"]
_RI_SET = ["nested-mispred", "bfs", "xz", "gobmk", "mcf17"]


def _cosim(name, config):
    workload = get_workload(name)
    _mod, prog = workload.build(_SCALE)
    if _LOCKSTEP:
        outcome = run_lockstep(prog, config)
        assert outcome.ok, \
            "%s:\n%s" % (name, outcome.divergence.format())
        return outcome.result
    emu = Emulator(prog).run()
    result = O3Core(prog, config).run()
    assert result.regs == emu.regs, name
    assert result.memory == emu.memory, name
    return result


@pytest.mark.parametrize("name", _BASELINE_SET)
def test_baseline_cosim(name):
    _cosim(name, baseline_config())


@pytest.mark.parametrize("name", _MSSR_SET)
def test_mssr_cosim(name):
    _cosim(name, mssr_config(num_streams=4))


@pytest.mark.parametrize("name", _MSSR_SET[:4])
def test_mssr_two_stream_cosim(name):
    _cosim(name, mssr_config(num_streams=2, wpb_entries=32,
                             squash_log_entries=128))


@pytest.mark.parametrize("name", _RI_SET)
def test_ri_cosim(name):
    _cosim(name, ri_config(num_sets=64, assoc=2))
