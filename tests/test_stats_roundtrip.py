"""SimStats as_dict/from_dict must survive JSON and worker transport."""

import json

from repro.pipeline.stats import DERIVED_STATS, SimStats


def _sample_stats():
    stats = SimStats()
    stats.cycles = 1000
    stats.committed_insts = 2500
    stats.fetched_insts = 3000
    stats.cond_branches = 40
    stats.cond_mispredicts = 10
    stats.reuse_tests = 25
    stats.reuse_successes = 17
    stats.record_stream_distance(1)
    stats.record_stream_distance(1)
    stats.record_stream_distance(3)
    stats.ri_set_replacements = [0, 2, 0, 5]
    return stats


def test_as_dict_includes_derived():
    stats = _sample_stats()
    data = stats.as_dict()
    assert data["ipc"] == stats.ipc == 2.5
    assert data["branch_mpki"] == stats.branch_mpki
    assert data["cond_mispredict_rate"] == 0.25
    assert data["stream_distance_hist"] == {1: 2, 3: 1}


def test_json_roundtrip_restores_int_hist_keys():
    stats = _sample_stats()
    wire = json.loads(json.dumps(stats.as_dict()))
    # JSON stringifies dict keys...
    assert set(wire["stream_distance_hist"]) == {"1", "3"}
    back = SimStats.from_dict(wire)
    # ...and from_dict restores them to ints.
    assert back.stream_distance_hist == {1: 2, 3: 1}
    assert back.as_dict() == stats.as_dict()


def test_from_dict_recomputes_derived():
    data = _sample_stats().as_dict()
    for name in DERIVED_STATS:
        data[name] = -123.0  # bogus values must be ignored on load
    back = SimStats.from_dict(data)
    assert back.ipc == 2.5
    assert back.cond_mispredict_rate == 0.25
    assert "ipc" not in vars(back)  # property, not a loaded attribute


def test_roundtrip_is_idempotent():
    stats = _sample_stats()
    once = SimStats.from_dict(stats.as_dict()).as_dict()
    twice = SimStats.from_dict(once).as_dict()
    assert json.dumps(once, sort_keys=True) == \
        json.dumps(twice, sort_keys=True)


def test_roundtrip_none_ri_replacements():
    stats = SimStats()
    stats.cycles = 10
    back = SimStats.from_dict(json.loads(json.dumps(stats.as_dict())))
    assert back.ri_set_replacements is None
    assert back.cycles == 10
