"""Issue queues and functional-unit port accounting."""

import pytest

from repro.isa import Op, Instruction
from repro.pipeline.config import CoreConfig
from repro.pipeline.dyninst import DynInst
from repro.pipeline.scheduler import IssueQueue, FunctionUnits


def _dyn(seq, op=Op.ADD):
    num = Instruction(op, dest=3 if op is Op.ADD or op is Op.DIV else None,
                      srcs=(1, 2) if op in (Op.ADD, Op.DIV, Op.BEQ)
                      else (1,),
                      imm=0x100 if op is Op.BEQ else 0,
                      pc=0x100 + 4 * seq)
    return DynInst(seq, num.pc, num, 0, 0)


def test_ready_immediately_when_no_waits():
    iq = IssueQueue("t", 8)
    dyn = _dyn(0)
    iq.insert(dyn, [])
    fus = FunctionUnits(CoreConfig())
    fus.new_cycle(1)
    assert iq.take_ready(4, fus.try_take) == [dyn]
    assert iq.size == 0


def test_wakeup_decrements_and_readies():
    iq = IssueQueue("t", 8)
    dyn = _dyn(0)
    iq.insert(dyn, [10, 11])
    fus = FunctionUnits(CoreConfig())
    fus.new_cycle(1)
    assert iq.take_ready(4, fus.try_take) == []
    iq.wakeup(10)
    assert iq.take_ready(4, fus.try_take) == []
    iq.wakeup(11)
    assert iq.take_ready(4, fus.try_take) == [dyn]


def test_oldest_first_issue():
    iq = IssueQueue("t", 8)
    young = _dyn(5)
    old = _dyn(1)
    iq.insert(young, [])
    iq.insert(old, [])
    fus = FunctionUnits(CoreConfig(num_alu=1))
    fus.new_cycle(1)
    assert iq.take_ready(1, fus.try_take) == [old]


def test_capacity_overflow_asserts():
    iq = IssueQueue("t", 1)
    iq.insert(_dyn(0), [])
    with pytest.raises(AssertionError):
        iq.insert(_dyn(1), [])


def test_squashed_entries_reclaimed():
    iq = IssueQueue("t", 4)
    dyns = [_dyn(i) for i in range(3)]
    for dyn in dyns:
        iq.insert(dyn, [99])
    dyns[0].squashed = True
    dyns[2].squashed = True
    iq.remove_squashed()
    assert iq.size == 1


def test_alu_port_limit():
    fus = FunctionUnits(CoreConfig(num_alu=2))
    fus.new_cycle(1)
    assert fus.try_take(_dyn(0))
    assert fus.try_take(_dyn(1))
    assert not fus.try_take(_dyn(2))
    fus.new_cycle(2)
    assert fus.try_take(_dyn(3))


def test_divider_unpipelined():
    fus = FunctionUnits(CoreConfig())
    fus.new_cycle(1)
    assert fus.try_take(_dyn(0, Op.DIV))
    fus.new_cycle(2)
    assert not fus.try_take(_dyn(1, Op.DIV))   # divider busy
    fus.new_cycle(1 + CoreConfig().div_latency)
    assert fus.try_take(_dyn(2, Op.DIV))


def test_branch_uses_bru_ports():
    fus = FunctionUnits(CoreConfig(num_bru=1))
    fus.new_cycle(1)
    assert fus.try_take(_dyn(0, Op.BEQ))
    assert not fus.try_take(_dyn(1, Op.BEQ))
    # ALU ports unaffected
    assert fus.try_take(_dyn(2, Op.ADD))


def test_latencies():
    cfg = CoreConfig()
    fus = FunctionUnits(cfg)
    assert fus.latency_of(_dyn(0, Op.ADD)) == cfg.alu_latency
    assert fus.latency_of(_dyn(0, Op.DIV)) == cfg.div_latency
    assert fus.latency_of(_dyn(0, Op.BEQ)) == cfg.branch_latency
