"""64-bit arithmetic helpers: unit values + hypothesis vs Python ints."""

from hypothesis import given, strategies as st

from repro.utils.bits import (
    MASK64, wrap64, to_signed, to_unsigned, sll64, srl64, sra64,
    div_trunc, rem_trunc, mulh64,
)

u64 = st.integers(min_value=0, max_value=MASK64)
s64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


def test_wrap64_basics():
    assert wrap64(0) == 0
    assert wrap64(1 << 64) == 0
    assert wrap64(-1) == MASK64
    assert wrap64(MASK64 + 2) == 1


def test_signed_round_trip_extremes():
    assert to_signed(MASK64) == -1
    assert to_signed(1 << 63) == -(1 << 63)
    assert to_unsigned(-1) == MASK64
    assert to_unsigned(-(1 << 63)) == 1 << 63


@given(s64)
def test_signed_unsigned_round_trip(value):
    assert to_signed(to_unsigned(value)) == value


@given(u64, st.integers(min_value=0, max_value=127))
def test_shifts_match_reference(value, shamt):
    eff = shamt & 63
    assert sll64(value, shamt) == (value << eff) & MASK64
    assert srl64(value, shamt) == value >> eff
    assert sra64(value, shamt) == to_unsigned(to_signed(value) >> eff)


def test_division_by_zero_riscv_semantics():
    assert div_trunc(42, 0) == MASK64          # -1
    assert rem_trunc(42, 0) == 42
    assert rem_trunc(to_unsigned(-7), 0) == to_unsigned(-7)


def test_division_overflow_case():
    int_min = to_unsigned(-(1 << 63))
    assert div_trunc(int_min, to_unsigned(-1)) == int_min
    assert rem_trunc(int_min, to_unsigned(-1)) == 0


@given(s64, s64)
def test_division_truncates_toward_zero(a, b):
    if b == 0 or (a == -(1 << 63) and b == -1):
        return
    got = to_signed(div_trunc(to_unsigned(a), to_unsigned(b)))
    expected = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        expected = -expected
    assert got == expected


@given(s64, s64)
def test_remainder_identity(a, b):
    if b == 0 or (a == -(1 << 63) and b == -1):
        return
    q = to_signed(div_trunc(to_unsigned(a), to_unsigned(b)))
    r = to_signed(rem_trunc(to_unsigned(a), to_unsigned(b)))
    assert q * b + r == a
    assert abs(r) < abs(b)


@given(s64, s64)
def test_mulh_matches_wide_multiply(a, b):
    got = to_signed(mulh64(to_unsigned(a), to_unsigned(b)))
    assert got == (a * b) >> 64
