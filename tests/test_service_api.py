"""HTTP round-trips against a live service on an ephemeral port."""

import json

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.jobs import SimJob
from repro.service import ServiceClient, ServiceError, ServiceThread

_SCALE = 0.02

_SWEEP_DOC = {
    "sweep": {"name": "api-test", "workloads": ["linear-mispred"],
              "scale": _SCALE},
    "scenario": [
        {"name": "baseline", "kind": "baseline"},
        # Declares the same point again: dedupe must collapse it.
        {"name": "baseline-dup", "kind": "baseline"},
        {"name": "mssr", "kind": "mssr",
         "set": {"mssr": {"num_streams": 2}}},
    ],
}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("svc"))
    with ServiceThread(directory, workers=2, lease_ttl=15.0) as svc:
        yield svc


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(url=service.url)


def test_healthz_and_discovery(service):
    # Discovery through endpoint.json must reach the same server.
    client = ServiceClient(directory=service.directory)
    health = client.healthz()
    assert health["ok"] is True
    assert health["store"] == service.directory


def test_submit_wait_results_roundtrip(client):
    reply = client.submit(dict(_SWEEP_DOC), client="t1")
    assert reply["declared"] == 3
    assert reply["unique"] == 2
    sweep_id = reply["sweep_id"]

    results = client.wait(sweep_id, timeout=90.0)
    assert results["complete"]
    assert [e["scenario"] for e in results["entries"]] == \
        ["baseline", "baseline-dup", "mssr"]
    assert all(e["state"] == "done" for e in results["entries"])
    base, dup, mssr = results["entries"]
    assert base["job_hash"] == dup["job_hash"]
    assert base["stats"] == dup["stats"]
    assert mssr["stats"] != base["stats"]

    job = client.job(base["job_hash"])
    assert job["state"] == "done"
    assert job["stats"] == base["stats"]

    summary = client.sweep(sweep_id)
    assert summary["declared"] == 3 and summary["complete"]


def test_two_clients_overlapping_sweeps_run_each_point_once(client):
    """Acceptance: concurrent clients submitting the same sweep share
    one execution per unique point, cluster-wide."""
    before = client.counters()["counters"]
    doc = dict(_SWEEP_DOC)
    r1 = client.submit(doc, name="overlap", client="c1")
    r2 = client.submit(doc, name="overlap", client="c2")
    client.wait(r1["sweep_id"], timeout=90.0)
    client.wait(r2["sweep_id"], timeout=90.0)
    after = client.counters()["counters"]
    # Both points already ran for an earlier test sweep: the overlap
    # submissions must not execute anything new.
    assert after["executions"] == before["executions"]
    assert after["submitted"] == before["submitted"] + 6
    assert after["dedup_hits"] == before["dedup_hits"] + 6


def test_submit_explicit_job_decls(client):
    job = SimJob("linear-mispred", "mssr", _SCALE, {"streams": 4})
    reply = client.submit({"jobs": [job.decl(), job.decl()]},
                          name="decls")
    assert reply["declared"] == 2 and reply["unique"] == 1
    assert reply["jobs"][0]["job_hash"] == job.job_hash()
    results = client.wait(reply["sweep_id"], timeout=90.0)
    assert results["entries"][0]["state"] == "done"


def test_events_stream_snapshot_and_progress(client):
    events = iter(client.events(limit=3, timeout=90.0))
    snapshot = next(events)
    assert snapshot["type"] == "snapshot"
    assert "counters" in snapshot and "states" in snapshot

    job = SimJob("nested-mispred", "baseline", _SCALE)
    client.submit({"jobs": [job.decl()]})
    seen = [next(events), next(events)]
    assert [e["state"] for e in seen] == ["running", "done"]
    assert all(e["job_hash"] == job.job_hash() for e in seen)


def test_http_errors(client):
    with pytest.raises(ServiceError) as exc:
        client.job("no-such-hash")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client.sweep("s_bogus")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client._request("DELETE", "/counters")
    assert exc.value.status == 405
    with pytest.raises(ServiceError) as exc:
        client._request("GET", "/definitely/not/a/route")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client.submit({"jobs": []})
    assert exc.value.status == 400
    with pytest.raises(ServiceError) as exc:
        client.submit({"sweep": {"workloads": ["no-such-workload"]},
                       "scenario": [{"name": "x", "kind": "baseline"}]})
    assert exc.value.status == 400


def test_cli_submit_wait_against_live_service(service, tmp_path, capsys):
    sweep_file = tmp_path / "cli.json"
    sweep_file.write_text(json.dumps(_SWEEP_DOC))
    rc = cli_main(["submit", str(sweep_file), "--url", service.url,
                   "--wait", "--timeout", "90"])
    assert rc == 0
    out = capsys.readouterr().out
    assert 'states {"done": 3}' in out
    assert "baseline" in out and "mssr" in out
    assert "ipc=" in out

    rc = cli_main(["submit", str(sweep_file), "--url", service.url])
    assert rc == 0
    out = capsys.readouterr().out
    assert "3 declared, 2 unique job(s)" in out
