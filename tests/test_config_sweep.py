"""Scenario/sweep declarations, TOML loading and the sweep/config CLI."""

import glob
import io
import json
import os

import pytest

from repro.config.sweep import (Scenario, Sweep, SweepError, load_sweep,
                                sweep_from_dict)
from repro.config.toml_compat import TomlError, _mini_loads, loads
from repro.harness import ResultCache, clear_memo
from repro.harness.cli import main as cli_main

_SCALE = 0.05

_SMOKE_TOML = """\
[sweep]
name = "smoke"
workloads = ["linear-mispred"]
scale = %s

[[scenario]]
name = "baseline"
kind = "baseline"

[[scenario]]
name = "mssr-grid"
kind = "mssr"
[scenario.grid]
mssr.num_streams = [1, 2]

[[scenario]]
name = "dci"                     # == the 1-stream grid point
kind = "mssr"
[scenario.set]
mssr.num_streams = 1
""" % _SCALE


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CONFIG", raising=False)
    return ResultCache(directory=str(cache_dir))


# ---------------------------------------------------------------------------
# TOML compatibility layer
# ---------------------------------------------------------------------------
def test_mini_parser_matches_tomllib_on_sweep_files():
    """The 3.10 fallback parses our sweep subset identically."""
    doc = loads(_SMOKE_TOML)
    assert _mini_loads(_SMOKE_TOML) == doc
    assert doc["sweep"]["name"] == "smoke"
    assert doc["scenario"][1]["grid"]["mssr"]["num_streams"] == [1, 2]


def test_mini_parser_values():
    doc = _mini_loads(
        'a = 1\nb = 2.5\nc = "text"  # comment\nd = true\n'
        'e = [1, 2, 3]\nf = { x = 1, y = "z" }\n'
        '[t.sub]\nk = 0x10\n')
    assert doc["a"] == 1 and doc["b"] == 2.5 and doc["c"] == "text"
    assert doc["d"] is True and doc["e"] == [1, 2, 3]
    assert doc["f"] == {"x": 1, "y": "z"}
    assert doc["t"]["sub"]["k"] == 16


def test_mini_parser_rejects_garbage():
    with pytest.raises(TomlError, match="line 1"):
        _mini_loads("not a key value")
    with pytest.raises(TomlError, match="duplicate"):
        _mini_loads("a = 1\na = 2\n")
    with pytest.raises(TomlError, match="single-line"):
        _mini_loads("a = [1,\n")


# ---------------------------------------------------------------------------
# Scenario expansion
# ---------------------------------------------------------------------------
def test_grid_is_cartesian_product():
    scenario = Scenario("s", kind="mssr",
                        grid={"mssr.num_streams": [1, 2],
                              "mssr.wpb_entries": [8, 16]})
    points = scenario.points()
    assert len(points) == 4
    assert {(p["mssr.num_streams"], p["mssr.wpb_entries"])
            for p in points} == {(1, 8), (1, 16), (2, 8), (2, 16)}


def test_zip_advances_in_parallel():
    scenario = Scenario("s", kind="mssr",
                        zip={"mssr.wpb_entries": [8, 16],
                             "mssr.squash_log_entries": [32, 64]})
    points = scenario.points()
    assert [(p["mssr.wpb_entries"], p["mssr.squash_log_entries"])
            for p in points] == [(8, 32), (16, 64)]


def test_zip_length_mismatch_rejected():
    scenario = Scenario("s", kind="mssr",
                        zip={"mssr.wpb_entries": [8, 16],
                             "mssr.squash_log_entries": [32]})
    with pytest.raises(SweepError, match="equal lengths"):
        scenario.points()


def test_grid_times_zip_with_set_base():
    scenario = Scenario("s", kind="mssr",
                        set={"mssr.rgid_bits": 8},
                        grid={"mssr.num_streams": [1, 2]},
                        zip={"mssr.wpb_entries": [8, 16],
                             "mssr.squash_log_entries": [32, 64]})
    points = scenario.points()
    assert len(points) == 4
    assert all(p["mssr.rgid_bits"] == 8 for p in points)


def test_unknown_axis_key_suggests():
    scenario = Scenario("s", kind="mssr",
                        grid={"mssr.num_stream": [1, 2]})
    with pytest.raises(KeyError, match="mssr.num_streams"):
        scenario.points()


# ---------------------------------------------------------------------------
# Sweep expansion + dedupe
# ---------------------------------------------------------------------------
def test_expansion_dedupes_across_scenarios():
    sweep = sweep_from_dict(loads(_SMOKE_TOML))
    plan = sweep.expand()
    # baseline + 2 grid points + dci = 4 declared, but dci == grid@1.
    assert plan.declared == 4
    assert len(plan.jobs) == 3
    assert plan.duplicates == 1
    dci = [e.job for e in plan.entries if e.scenario == "dci"][0]
    grid1 = [e.job for e in plan.entries
             if e.scenario == "mssr-grid"
             and e.job.spec()["config"]["mssr.num_streams"] == 1][0]
    assert dci.job_hash() == grid1.job_hash()


def test_suite_prefix_expands_workloads():
    sweep = Sweep(workloads=("suite:micro",), scale=_SCALE,
                  scenarios=[Scenario("b", kind="baseline")])
    plan = sweep.expand()
    assert plan.declared >= 2
    assert len({e.workload for e in plan.entries}) == plan.declared


def test_unknown_tables_and_keys_rejected():
    with pytest.raises(SweepError, match="scenarios"):
        sweep_from_dict({"sweep": {"scenario": []}})   # did-you-mean
    with pytest.raises(SweepError, match="unknown top-level"):
        sweep_from_dict({"sweep": {}, "scenraio": []})
    with pytest.raises(SweepError, match="missing 'kind'"):
        sweep_from_dict({"scenario": [{"name": "x"}]})
    with pytest.raises(SweepError, match="no scenarios"):
        sweep_from_dict({"sweep": {"name": "empty"}}).expand()


def test_bad_axis_value_fails_at_declaration():
    sweep = sweep_from_dict({
        "sweep": {"workloads": ["linear-mispred"], "scale": _SCALE},
        "scenario": [{"name": "s", "kind": "mssr",
                      "grid": {"mssr.memory_hazard_scheme":
                               ["verify", "blooom"]}}]})
    with pytest.raises(ValueError, match='did you mean "bloom"'):
        sweep.expand()


def test_load_sweep_reads_toml_and_json(tmp_path):
    toml_path = tmp_path / "s.toml"
    toml_path.write_text(_SMOKE_TOML)
    json_path = tmp_path / "s.json"
    json_path.write_text(json.dumps(loads(_SMOKE_TOML)))
    assert load_sweep(str(toml_path)).expand().declared == \
        load_sweep(str(json_path)).expand().declared
    with pytest.raises(SweepError, match="cannot read"):
        load_sweep(str(tmp_path / "missing.toml"))


def test_run_sweep_helper_shares_deduplicated_stats(tmp_cache):
    from repro.analysis.experiments import run_sweep
    clear_memo()
    plan, rows = run_sweep(loads(_SMOKE_TOML))
    assert plan.declared == 4 and len(rows) == 4
    dci = [stats for entry, stats in rows.items()
           if entry.scenario == "dci"][0]
    grid1 = [stats for entry, stats in rows.items()
             if entry.scenario == "mssr-grid"
             and dict(entry.job.config)["mssr.num_streams"] == 1][0]
    assert dci is grid1               # one simulation, shared object
    assert all(stats.committed_insts > 0 for stats in rows.values())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _write_smoke(tmp_path):
    path = tmp_path / "smoke.toml"
    path.write_text(_SMOKE_TOML)
    return str(path)


def test_cli_sweep_dry_run(tmp_cache, tmp_path):
    out = io.StringIO()
    rc = cli_main(["sweep", _write_smoke(tmp_path), "--dry-run"],
                  out=out)
    text = out.getvalue()
    assert rc == 0
    assert "4 declared job(s), 3 unique (1 shared)" in text
    assert "job=" in text and "config=" in text


def test_cli_sweep_runs_and_persists_snapshots(tmp_cache, tmp_path):
    clear_memo()
    out = io.StringIO()
    rc = cli_main(["sweep", _write_smoke(tmp_path), "--json"], out=out)
    assert rc == 0
    payload = json.loads("\n".join(
        line for line in out.getvalue().splitlines()
        if not line.startswith("#")))
    assert payload["declared"] == 4
    assert payload["unique"] == 3
    assert len(payload["entries"]) == 4
    for entry in payload["entries"]:
        assert entry["stats"]["committed_insts"] > 0
    # every cached result carries its resolved snapshot + hashes
    # (entries live in 2-hex hash-prefix shard directories)
    assert tmp_cache.entries() == 3
    files = glob.glob(os.path.join(tmp_cache.directory,
                                   tmp_cache.fingerprint, "??", "*.json"))
    assert len(files) == 3
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        assert entry["job"]["config"]["core.width"] == 8
        assert len(entry["config_hash"]) == 24
        assert os.path.basename(path) == entry["job_hash"] + ".json"
        shard = os.path.basename(os.path.dirname(path))
        assert entry["job_hash"].startswith(shard)


def test_cli_sweep_rejects_bad_file(tmp_cache, tmp_path, capsys):
    path = tmp_path / "bad.toml"
    path.write_text("[sweep]\nnam = 'x'\n")
    rc = cli_main(["sweep", str(path)], out=io.StringIO())
    assert rc == 2
    assert "name" in capsys.readouterr().err


def test_cli_run_with_set_overrides(tmp_cache):
    clear_memo()
    out = io.StringIO()
    rc = cli_main(["run", "--workload", "linear-mispred", "--kind",
                   "mssr", "--scale", str(_SCALE), "--set",
                   "mssr.num_streams=2", "--json"], out=out)
    assert rc == 0
    payload = json.loads(out.getvalue().rsplit("#", 1)[0])
    assert len(payload[0]["config_hash"]) == 24
    assert payload[0]["job"]["config"]["mssr.num_streams"] == 2
    # the dotted override and the short --streams parameter are the
    # same point: running the latter is a pure cache hit.
    from repro.harness import SimJob
    via_param = SimJob("linear-mispred", "mssr", _SCALE, {"streams": 2})
    assert via_param.job_hash() == payload[0]["job_hash"]


def test_cli_run_rejects_bad_set(tmp_cache, capsys):
    rc = cli_main(["run", "--workload", "linear-mispred", "--set",
                   "core.widht=4"], out=io.StringIO())
    assert rc == 2
    assert "core.width" in capsys.readouterr().err


def test_cli_config_show_provenance(tmp_cache, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    out = io.StringIO()
    rc = cli_main(["config", "show", "--provenance", "--set",
                   "core.width=4"], out=out)
    text = out.getvalue()
    assert rc == 0
    assert "# env:REPRO_JOBS" in text
    assert "# override" in text
    assert "# default" in text
    assert "# config hash:" in text


def test_cli_config_hash_stable(tmp_cache):
    out_a, out_b = io.StringIO(), io.StringIO()
    assert cli_main(["config", "hash", "--kind", "mssr"], out=out_a) == 0
    assert cli_main(["config", "hash", "--kind", "mssr"], out=out_b) == 0
    assert out_a.getvalue() == out_b.getvalue()
    assert len(out_a.getvalue().strip()) == 24


def test_cli_config_docs_check_detects_drift(tmp_path, capsys):
    from repro.config.docs import BEGIN_MARK, END_MARK
    target = tmp_path / "README.md"
    target.write_text("# x\n\n%s\nstale\n%s\n" % (BEGIN_MARK, END_MARK))
    rc = cli_main(["config", "docs", "--check", "--target",
                   str(target)], out=io.StringIO())
    assert rc == 1
    out = io.StringIO()
    assert cli_main(["config", "docs", "--target", str(target)],
                    out=out) == 0
    assert cli_main(["config", "docs", "--check", "--target",
                     str(target)], out=io.StringIO()) == 0
