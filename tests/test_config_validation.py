"""Eager validation of the configuration dataclasses.

Historically a typo'd ``memory_hazard_scheme`` (``"blooom"``) silently
fell back to verify-mode behaviour and an unknown predictor name only
blew up deep inside ``build_predictor`` — these tests pin the new
fail-at-construction behaviour with did-you-mean suggestions.
"""

import pytest

from repro.frontend.predictors import build_predictor
from repro.pipeline.config import (MEMORY_HAZARD_SCHEMES, PREDICTOR_KINDS,
                                   CoreConfig, MSSRConfig, RIConfig,
                                   baseline_config, mssr_config, ri_config)


# ---------------------------------------------------------------------------
# MSSRConfig
# ---------------------------------------------------------------------------
def test_mssr_scheme_typo_rejected_with_suggestion():
    with pytest.raises(ValueError) as excinfo:
        MSSRConfig(memory_hazard_scheme="blooom")
    message = str(excinfo.value)
    assert "blooom" in message
    assert 'did you mean "bloom"' in message
    assert "verify" in message          # choices are listed


def test_mssr_valid_schemes_accepted():
    for scheme in MEMORY_HAZARD_SCHEMES:
        assert MSSRConfig(memory_hazard_scheme=scheme) \
            .memory_hazard_scheme == scheme


@pytest.mark.parametrize("field", ["num_streams", "wpb_entries",
                                   "squash_log_entries", "rgid_bits",
                                   "reconvergence_timeout", "bloom_bits",
                                   "bloom_hashes"])
def test_mssr_rejects_non_positive(field):
    with pytest.raises(ValueError, match=field):
        MSSRConfig(**{field: 0})
    with pytest.raises(ValueError, match=field):
        MSSRConfig(**{field: -1})


def test_mssr_config_helper_still_validates():
    with pytest.raises(ValueError):
        mssr_config(num_streams=0)


# ---------------------------------------------------------------------------
# CoreConfig
# ---------------------------------------------------------------------------
def test_predictor_typo_rejected_with_suggestion():
    with pytest.raises(ValueError) as excinfo:
        CoreConfig(predictor="tage-slc")
    message = str(excinfo.value)
    assert 'did you mean "tage-scl"' in message


def test_every_declared_predictor_is_buildable():
    """The closed choice set and the factory can never drift apart."""
    for kind in PREDICTOR_KINDS:
        assert build_predictor(kind) is not None
        CoreConfig(predictor=kind)


@pytest.mark.parametrize("field", ["width", "rob_entries",
                                   "fetch_blocks_per_cycle",
                                   "fetch_block_insts",
                                   "lq_entries", "sq_entries",
                                   "l1_size", "dram_latency",
                                   "max_cycles"])
def test_core_rejects_non_positive(field):
    with pytest.raises(ValueError, match=field):
        CoreConfig(**{field: 0})


def test_core_rejects_too_few_phys_regs():
    with pytest.raises(ValueError, match="physical registers"):
        CoreConfig(num_phys_regs=0)


def test_core_rejects_non_power_of_two_btb_sets():
    with pytest.raises(ValueError, match="power of two"):
        CoreConfig(btb_sets=100)
    assert CoreConfig(btb_sets=256).btb_sets == 256


def test_ri_rejects_non_positive():
    with pytest.raises(ValueError, match="num_sets"):
        RIConfig(num_sets=0)
    with pytest.raises(ValueError, match="assoc"):
        RIConfig(assoc=-2)
    assert ri_config(num_sets=64, assoc=2).ri.num_sets == 64


def test_defaults_still_construct():
    assert baseline_config().width == 8
    assert mssr_config(num_streams=4).mssr.num_streams == 4
