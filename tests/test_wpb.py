"""Wrong-Path Buffers: range-overlap reconvergence search."""

from hypothesis import given, strategies as st

from repro.mssr.wpb import WrongPathBuffers, WPBStream


def _stream(blocks, event_id=1, trigger_seq=0, max_blocks=16,
            single_page=False):
    stream = WPBStream()
    stream.fill(blocks, event_id, trigger_seq, max_blocks,
                single_page=single_page)
    return stream


def test_overlap_basic():
    stream = _stream([(0x100, 0x11C), (0x200, 0x21C)])
    # Block [0x118..0x130] overlaps the first entry at 0x118.
    offset, pc = stream.find_overlap(0x118, 0x130)
    assert pc == 0x118
    assert offset == (0x118 - 0x100) // 4
    # Block entirely inside the second entry.
    offset, pc = stream.find_overlap(0x208, 0x20C)
    assert pc == 0x208
    assert offset == 8 + (0x208 - 0x200) // 4


def test_overlap_prefers_first_entry():
    stream = _stream([(0x100, 0x13C), (0x120, 0x15C)])
    offset, pc = stream.find_overlap(0x120, 0x124)
    assert pc == 0x120
    assert offset == (0x120 - 0x100) // 4   # first (oldest) entry wins


def test_no_overlap():
    stream = _stream([(0x100, 0x11C)])
    assert stream.find_overlap(0x200, 0x23C) is None


def test_reconv_pc_is_max_of_starts():
    stream = _stream([(0x100, 0x13C)])
    # Fetch block starts before the WPB entry: reconverge at entry start.
    offset, pc = stream.find_overlap(0x0F0, 0x108)
    assert pc == 0x100
    assert offset == 0


def test_capacity_truncation():
    blocks = [(0x100 + i * 0x40, 0x100 + i * 0x40 + 0x1C)
              for i in range(10)]
    stream = _stream(blocks, max_blocks=4)
    assert len(stream.blocks) == 4
    assert stream.num_insts == 4 * 8


def test_single_page_restriction():
    blocks = [(0x0FF0, 0x0FFC), (0x1000, 0x101C)]  # crosses page 0 -> 1
    stream = _stream(blocks, single_page=True)
    assert len(stream.blocks) == 1


def test_pcs_enumeration():
    stream = _stream([(0x100, 0x108), (0x200, 0x204)])
    assert stream.pcs() == [0x100, 0x104, 0x108, 0x200, 0x204]


def test_round_robin_allocation():
    wpb = WrongPathBuffers(num_streams=2, entries_per_stream=8)
    first = wpb.allocate([(0x100, 0x10C)], event_id=1, trigger_seq=1)
    second = wpb.allocate([(0x200, 0x20C)], event_id=2, trigger_seq=2)
    third = wpb.allocate([(0x300, 0x30C)], event_id=3, trigger_seq=3)
    assert {first, second} == {0, 1}
    assert third == first  # wrapped around


def test_most_recent_stream_wins():
    wpb = WrongPathBuffers(num_streams=4, entries_per_stream=8)
    wpb.allocate([(0x100, 0x13C)], event_id=1, trigger_seq=1)
    newer = wpb.allocate([(0x120, 0x15C)], event_id=2, trigger_seq=2)
    idx, _offset, _pc = wpb.find_reconvergence(0x124, 0x128)
    assert idx == newer


def test_exclude_streams():
    wpb = WrongPathBuffers(num_streams=4, entries_per_stream=8)
    older = wpb.allocate([(0x100, 0x13C)], event_id=1, trigger_seq=1)
    newer = wpb.allocate([(0x120, 0x15C)], event_id=2, trigger_seq=2)
    idx, _offset, _pc = wpb.find_reconvergence(0x124, 0x128,
                                               exclude={newer})
    assert idx == older


@given(st.lists(st.tuples(st.integers(0, 200), st.integers(0, 10)),
                min_size=1, max_size=8),
       st.integers(0, 220), st.integers(0, 10))
def test_overlap_matches_bruteforce(block_specs, head_start, head_len):
    """Range-overlap detection vs an explicit per-PC reference."""
    blocks = []
    pc = 0x1000
    for gap, length in block_specs:
        start = pc + gap * 4
        end = start + length * 4
        blocks.append((start, end))
        pc = end + 4
    stream = _stream(blocks, max_blocks=16)

    start_head = 0x1000 + head_start * 4
    end_head = start_head + head_len * 4
    got = stream.find_overlap(start_head, end_head)

    # Brute force: first stream PC inside [start_head, end_head].
    expected = None
    for offset, stream_pc in enumerate(stream.pcs()):
        if start_head <= stream_pc <= end_head:
            expected = (offset, max(start_head, stream_pc))
            break
    # The block-level search reconverges at max(start_head, block_start),
    # which for a block already begun equals start_head if inside range.
    if expected is None:
        assert got is None
    else:
        assert got is not None
        got_offset, got_pc = got
        assert got_pc == expected[1]
        assert got_offset == expected[0]
