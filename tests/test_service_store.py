"""The durable job store: dedupe, the state machine, leases."""

import json

import pytest

from repro.harness.cache import ResultCache
from repro.harness.jobs import SimJob
from repro.service.store import JobStore

_SCALE = 0.05


def _job(workload="linear-mispred", kind="baseline", **params):
    return SimJob(workload, kind, _SCALE, params)


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_RETRIES", raising=False)
    js = JobStore(str(tmp_path / "svc"))
    yield js
    js.close()


# ---------------------------------------------------------------------------
# Submission + dedupe
# ---------------------------------------------------------------------------
def test_submit_dedupes_within_one_sweep(store):
    job = _job()
    sweep_id, rows = store.submit([("a", job), ("b", job)])
    assert len(rows) == 2
    assert rows[0]["job_hash"] == rows[1]["job_hash"]
    counters = store.counters()
    assert counters["submitted"] == 2
    assert counters["unique_jobs"] == 1
    assert counters["dedup_hits"] == 1
    assert store.sweep(sweep_id)["declared"] == 2


def test_submit_dedupes_across_clients(store):
    jobs = [("s", _job()), ("s", _job(kind="mssr", streams=2))]
    store.submit(jobs, client="client-1")
    store.submit(jobs, client="client-2")
    counters = store.counters()
    assert counters["submitted"] == 4
    assert counters["unique_jobs"] == 2
    assert counters["dedup_hits"] == 2
    assert store.state_counts() == {"queued": 2}


def test_submit_serves_preexisting_cache_result(tmp_path):
    directory = str(tmp_path / "svc")
    job = _job()
    # A result published by a direct `harness run` against the same
    # results directory satisfies the submission without any worker.
    ResultCache(directory=directory + "/results").put(job, {"ipc": 1.0})
    store = JobStore(directory)
    _sweep, rows = store.submit([("s", job)])
    assert rows[0]["state"] == "done"
    assert store.counters()["cache_hits"] == 1
    assert store.claim("w") is None
    assert store.job(job.job_hash())["stats"] == {"ipc": 1.0}
    store.close()


# ---------------------------------------------------------------------------
# Lifecycle: claim -> heartbeat -> complete / fail
# ---------------------------------------------------------------------------
def test_claim_complete_lifecycle(store):
    job = _job()
    sweep_id, _rows = store.submit([("s", job)])
    claimed = store.claim("w1", now=100.0)
    assert claimed is not None
    job_hash, rebuilt = claimed
    assert rebuilt.job_hash() == job.job_hash() == job_hash
    assert store.claim("w2") is None          # nothing else queued

    row = store.job(job_hash)
    assert row["state"] == "running" and row["attempts"] == 1

    store.complete(job_hash, "w1", {"ipc": 2.0})
    row = store.job(job_hash)
    assert row["state"] == "done"
    assert row["stats"] == {"ipc": 2.0}
    assert store.counters()["executions"] == 1
    summary = store.sweep(sweep_id)
    assert summary["complete"] and summary["states"] == {"done": 1}


def test_fail_requeues_until_budget_exhausted(store):
    job = _job()
    store.submit([("s", job)], retries=1)     # max_attempts = 2
    job_hash, _ = store.claim("w1")
    assert store.fail(job_hash, "w1", "boom 1") == "queued"
    assert store.counters()["requeues"] == 1

    job_hash2, _ = store.claim("w1")
    assert job_hash2 == job_hash
    assert store.fail(job_hash, "w1", "boom 2") == "failed"
    row = store.job(job_hash)
    assert row["state"] == "failed" and row["error"] == "boom 2"
    assert row["attempts"] == 2
    assert store.counters()["failures"] == 1
    assert store.claim("w1") is None


def test_resubmission_requeues_failed_job(store):
    job = _job()
    store.submit([("s", job)], retries=0)
    job_hash, _ = store.claim("w1")
    store.fail(job_hash, "w1", "boom")
    assert store.job(job_hash)["state"] == "failed"

    _sweep, rows = store.submit([("s", job)], retries=0)
    assert rows[0]["state"] == "queued"
    row = store.job(job_hash)
    assert row["attempts"] == 0 and row["error"] is None


# ---------------------------------------------------------------------------
# Crash detection: heartbeats + reap
# ---------------------------------------------------------------------------
def test_reap_requeues_stale_lease(store):
    job = _job()
    store.submit([("s", job)], retries=1)
    job_hash, _ = store.claim("w1", now=100.0)
    # Fresh lease survives the reaper...
    assert store.reap(lease_ttl=15.0, now=110.0) == []
    # ...heartbeats extend it...
    store.heartbeat([job_hash], "w1", now=114.0)
    assert store.reap(lease_ttl=15.0, now=125.0) == []
    # ...and a stale one is requeued (attempt budget remains).
    assert store.reap(lease_ttl=15.0, now=140.0) == \
        [(job_hash, "queued")]
    counters = store.counters()
    assert counters["worker_losses"] == 1
    assert counters["requeues"] == 1
    assert store.job(job_hash)["state"] == "queued"


def test_reap_orphans_after_retries_exhausted(store):
    job = _job()
    store.submit([("s", job)], retries=0)     # one attempt only
    job_hash, _ = store.claim("w1", now=100.0)
    assert store.reap(lease_ttl=15.0, now=200.0) == \
        [(job_hash, "orphaned")]
    row = store.job(job_hash)
    assert row["state"] == "orphaned"
    assert "w1" in row["error"] and "heartbeat" in row["error"]
    assert store.claim("w2") is None


def test_heartbeat_only_touches_own_running_jobs(store):
    job = _job()
    store.submit([("s", job)])
    job_hash, _ = store.claim("w1", now=100.0)
    store.heartbeat([job_hash], "somebody-else", now=500.0)
    # The foreign heartbeat must not refresh w1's lease.
    assert store.reap(lease_ttl=15.0, now=130.0) == \
        [(job_hash, "queued")]


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------
def test_sweep_results_order_and_errors(store):
    good, bad = _job(), _job(kind="mssr", streams=2)
    sweep_id, _rows = store.submit(
        [("g", good), ("b", bad)], retries=0)
    job_hash, _ = store.claim("w1")   # oldest first: good
    store.complete(job_hash, "w1", {"ipc": 1.5})
    job_hash, _ = store.claim("w1")
    store.fail(job_hash, "w1", "exploded")

    results = store.sweep_results(sweep_id)
    assert [e["scenario"] for e in results["entries"]] == ["g", "b"]
    assert results["entries"][0]["stats"] == {"ipc": 1.5}
    assert results["entries"][1]["state"] == "failed"
    assert results["entries"][1]["error"] == "exploded"
    assert results["complete"]
    assert store.sweep("s_nope") is None
    assert store.sweep_results("s_nope") is None


def test_decl_persisted_is_hash_stable(store):
    job = _job(kind="mssr", streams=4, wpb=16)
    store.submit([("s", job)])
    row = store.job(job.job_hash(), with_stats=False)
    rebuilt = SimJob.from_decl(row["decl"])
    assert rebuilt.job_hash() == job.job_hash()
    assert json.dumps(row["decl"], sort_keys=True)   # JSON-clean


# ---------------------------------------------------------------------------
# Batched claims
# ---------------------------------------------------------------------------
def test_claim_many_leases_batch_in_one_transaction(store):
    jobs = [("s", _job(kind="mssr", streams=s)) for s in (1, 2, 4)]
    store.submit(jobs)
    claimed = store.claim_many("w1", limit=2, now=100.0)
    assert len(claimed) == 2
    # Oldest-first, matching repeated single claims.
    assert [h for h, _job_ in claimed] == [row[1][1].job_hash()
                                          for row in zip(range(2), jobs)]
    for job_hash, job in claimed:
        assert store.job(job_hash)["state"] == "running"
        assert store.job(job_hash)["attempts"] == 1
    counters = store.counters()
    assert counters["claims"] == 2
    assert counters["claim_txns"] == 1   # one transaction for both

    # Remainder + empty queue.
    assert len(store.claim_many("w1", limit=5)) == 1
    assert store.claim_many("w1", limit=5) == []
    counters = store.counters()
    assert counters["claims"] == 3
    assert counters["claim_txns"] == 2   # empty probe bumps nothing


def test_claim_delegates_to_claim_many(store):
    store.submit([("s", _job())])
    claimed = store.claim("w1", now=50.0)
    assert claimed is not None
    job_hash, job = claimed
    assert store.job(job_hash)["state"] == "running"
    assert store.claim("w1") is None
    counters = store.counters()
    assert counters["claims"] == 1
    assert counters["claim_txns"] == 1


def test_batched_claims_fewer_transactions_than_jobs(store):
    """The point of claim_many: N jobs lease in far fewer write
    transactions than N."""
    jobs = [("s", _job(kind="mssr", streams=s, wpb=w))
            for s in (1, 2) for w in (4, 8, 16)]
    store.submit(jobs)
    total = 0
    while True:
        batch = store.claim_many("w1", limit=4)
        if not batch:
            break
        total += len(batch)
    assert total == 6
    counters = store.counters()
    assert counters["claims"] == 6
    assert counters["claim_txns"] == 2
    assert counters["claim_txns"] < counters["claims"]
