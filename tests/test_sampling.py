"""SimPoint-style sampled simulation (repro.sampling)."""

import io
import json
import os

import pytest

from repro.emu import Emulator
from repro.harness import SimJob, execute
from repro.harness.cli import main as cli_main
from repro.pipeline.core import InitialState, O3Core
from repro.sampling import (
    BBVProfile,
    Checkpoint,
    CheckpointStore,
    SamplingSpec,
    capture_checkpoints,
    pick_simpoints,
    profile_program,
    project_bbv,
    run_sampled,
)
from repro.workloads.registry import get_workload, suite_names


@pytest.fixture
def micro_programs():
    return {name: get_workload(name).build(0.2)[1]
            for name in suite_names("micro")}


@pytest.fixture
def sandbox_stores(tmp_path, monkeypatch):
    """Keep both on-disk stores inside the test tmpdir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "ckpt"))
    return tmp_path


# ---------------------------------------------------------------------------
# BBV profiling
# ---------------------------------------------------------------------------
def test_profile_partitions_instructions(micro_programs):
    for prog in micro_programs.values():
        profile = profile_program(prog, 1000)
        assert profile.halted
        assert sum(iv.num_insts for iv in profile.intervals) \
            == profile.total_insts
        starts = [iv.start_inst for iv in profile.intervals]
        assert starts == sorted(starts)
        for iv in profile.intervals:
            assert sum(iv.bbv.values()) == iv.num_insts


def test_profile_merges_short_tail(micro_programs):
    prog = next(iter(micro_programs.values()))
    emu = Emulator(prog).run()
    total = emu.inst_count
    interval = 2000
    profile = profile_program(prog, interval)
    tail = total % interval
    if tail and tail < interval // 2:
        # Short tail folds into the last full interval.
        assert profile.intervals[-1].num_insts == interval + tail
    assert profile.total_insts == total


def test_profile_roundtrips_through_json(micro_programs):
    prog = next(iter(micro_programs.values()))
    profile = profile_program(prog, 1000)
    blob = json.dumps(profile.as_dict(), sort_keys=True)
    again = BBVProfile.from_dict(json.loads(blob))
    assert again.as_dict() == profile.as_dict()


def test_profile_rejects_bad_interval(micro_programs):
    prog = next(iter(micro_programs.values()))
    with pytest.raises(ValueError):
        profile_program(prog, 0)


# ---------------------------------------------------------------------------
# SimPoint selection
# ---------------------------------------------------------------------------
def test_projection_is_deterministic():
    bbv = {0x100: 600, 0x200: 400}
    assert project_bbv(bbv, 1000) == project_bbv(dict(bbv), 1000)
    assert project_bbv(bbv, 1000) != project_bbv(bbv, 1000, seed=1)


def test_pick_simpoints_deterministic(micro_programs):
    prog = next(iter(micro_programs.values()))
    profile = profile_program(prog, 1000)
    a = pick_simpoints(profile)
    b = pick_simpoints(profile)
    assert a.as_dict() == b.as_dict()


def test_simpoint_weights_are_instruction_shares(micro_programs):
    for prog in micro_programs.values():
        profile = profile_program(prog, 1000)
        selection = pick_simpoints(profile)
        assert abs(sum(p.weight for p in selection.points) - 1.0) < 1e-9
        assert sum(p.cluster_size for p in selection.points) \
            == selection.num_intervals
        starts = [p.start_inst for p in selection.points]
        assert starts == sorted(starts)


def test_single_phase_program_clusters_tightly(asm):
    # A tight homogeneous loop: apart from the setup and loop-exit
    # boundary intervals every interval has the identical BBV, so the
    # clustering needs at most a handful of clusters, one of which
    # holds nearly all the instructions, and the in-cluster error is 0.
    asm.li("a0", 3000)
    asm.label("loop")
    asm.addi("t0", "t0", 1)
    asm.addi("t1", "t1", 1)
    asm.blt("t0", "a0", "loop")
    asm.halt()
    prog = asm.finish()
    profile = profile_program(prog, 500)
    selection = pick_simpoints(profile)
    assert selection.k <= 3
    assert max(p.weight for p in selection.points) > 0.8
    assert selection.error_bound < 0.01


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------
def test_checkpoint_matches_emulator_state(micro_programs):
    prog = next(iter(micro_programs.values()))
    ckpts = capture_checkpoints(prog, [3000])
    ckpt = ckpts[3000]
    emu = Emulator(prog)
    emu.run_until(3000)
    assert ckpt.pc == emu.pc
    assert ckpt.regs == list(emu.regs)
    image = prog.initial_memory()
    for addr, value in ckpt.mem_words.items():
        assert emu.memory.read_word(addr) == value
        assert image.get(addr, 0) != value


def test_checkpoint_rejects_unreachable_boundary(asm):
    asm.addi("t0", "t0", 1)
    asm.halt()
    prog = asm.finish()
    with pytest.raises(ValueError):
        capture_checkpoints(prog, [1000])


def test_checkpoint_roundtrips_through_json(micro_programs):
    prog = next(iter(micro_programs.values()))
    ckpt = capture_checkpoints(prog, [2000])[2000]
    again = Checkpoint.from_dict(json.loads(
        json.dumps(ckpt.as_dict(), sort_keys=True)))
    assert again.as_dict() == ckpt.as_dict()
    state = again.initial_state()
    assert isinstance(state, InitialState)
    assert state.pc == ckpt.pc


def test_injected_core_finishes_program(micro_programs):
    """The detailed core, started from a checkpoint, must commit exactly
    the remaining instructions and reach the same architectural state as
    an uninterrupted emulator run."""
    prog = next(iter(micro_programs.values()))
    full = Emulator(prog).run()
    boundary = 3000
    ckpt = capture_checkpoints(prog, [boundary])[boundary]
    core = O3Core(prog, init_state=ckpt.initial_state())
    result = core.run()
    assert result.stats.committed_insts == full.inst_count - boundary
    assert result.regs == full.regs
    assert result.memory == full.memory


def test_checkpoint_store_roundtrip(sandbox_stores):
    store = CheckpointStore.from_env()
    assert store is not None
    assert store.get("deadbeef") is None
    store.put("deadbeef", {"hello": [1, 2, 3]})
    assert store.get("deadbeef") == {"hello": [1, 2, 3]}
    assert store.entries() == 1
    assert store.total_bytes() > 0
    assert store.prune(max_age_days=0) == 1
    assert store.entries() == 0


def test_checkpoint_store_disabled_by_env(monkeypatch):
    monkeypatch.setenv("REPRO_CKPT_DIR", "off")
    assert CheckpointStore.from_env() is None


# ---------------------------------------------------------------------------
# The sampled run
# ---------------------------------------------------------------------------
def test_sampled_ipc_within_5pct_of_full_run(micro_programs):
    """Acceptance criterion: for every micro-suite workload the sampled
    IPC is within 5% of the full detailed run.

    Interval 2000 is the supported operating point at micro scale (the
    ~12k-instruction programs only yield 6 intervals; shrinking the
    interval further raises the clustering error past the bound)."""
    for name, prog in micro_programs.items():
        full = O3Core(prog).run().stats.ipc
        res = run_sampled(prog, spec=SamplingSpec(interval_insts=2000))
        err = abs(res.ipc - full) / full
        assert err < 0.05, \
            "%s: sampled %.3f vs full %.3f (%.1f%%)" % (
                name, res.ipc, full, 100 * err)
        assert res.stats.committed_insts == res.total_insts
        assert res.detailed_insts > 0


def test_sampled_run_is_deterministic(micro_programs):
    prog = next(iter(micro_programs.values()))
    spec = SamplingSpec(interval_insts=2000)
    a = run_sampled(prog, spec=spec)
    b = run_sampled(prog, spec=spec)
    assert a.stats.as_dict() == b.stats.as_dict()


def test_sampled_run_uses_store(micro_programs, sandbox_stores):
    prog = next(iter(micro_programs.values()))
    spec = SamplingSpec(interval_insts=2000)
    store = CheckpointStore.from_env()
    key_spec = {"workload": "x", "scale": 0.2}
    a = run_sampled(prog, spec=spec, store=store, key_spec=key_spec)
    assert store.stores == 1 and store.hits == 0
    b = run_sampled(prog, spec=spec, store=store, key_spec=key_spec)
    assert store.hits == 1
    assert a.stats.as_dict() == b.stats.as_dict()


def test_sampled_run_emits_interval_events(micro_programs):
    from repro.obs import CallbackSink, Observability
    prog = next(iter(micro_programs.values()))
    seen = []
    obs = Observability(sinks=[CallbackSink(
        lambda ev: ev.etype == "interval"
        and seen.append((ev.phase, ev.index)))])
    res = run_sampled(prog, spec=SamplingSpec(interval_insts=2000),
                      obs=obs)
    begins = [index for phase, index in seen if phase == "begin"]
    ends = [index for phase, index in seen if phase == "end"]
    assert begins == ends == [p.index for p in res.selection.points]


def test_sampling_spec_validation():
    with pytest.raises(ValueError):
        SamplingSpec(interval_insts=0)
    with pytest.raises(ValueError):
        SamplingSpec(max_k=0)
    spec = SamplingSpec.from_any({"interval_insts": 500})
    assert spec.interval_insts == 500
    assert SamplingSpec.from_any(None) is None
    assert SamplingSpec.from_any(spec) is spec


# ---------------------------------------------------------------------------
# Harness integration
# ---------------------------------------------------------------------------
def test_simjob_hash_unchanged_without_sampling():
    plain = SimJob("linear-mispred", "baseline", 0.05)
    assert "sampling" not in plain.spec()
    sampled = SimJob("linear-mispred", "baseline", 0.05, sampling=True)
    assert sampled.spec()["sampling"]
    assert plain.job_hash() != sampled.job_hash()
    # The canonical tuple round-trips into an equal job.
    again = SimJob("linear-mispred", "baseline", 0.05,
                   sampling=sampled.sampling)
    assert again == sampled


def test_execute_routes_sampled_jobs(sandbox_stores):
    job = SimJob("linear-mispred", "baseline", 0.2,
                 sampling={"interval_insts": 2000})
    stats = execute(job)
    full = execute(SimJob("linear-mispred", "baseline", 0.2))
    assert stats.committed_insts == full.committed_insts
    assert abs(stats.ipc - full.ipc) / full.ipc < 0.05
    # Checkpoints persisted under the sandboxed store.
    store = CheckpointStore.from_env()
    assert store.entries() == 1


def test_cli_profile_and_simpoints(sandbox_stores):
    out = io.StringIO()
    assert cli_main(["profile", "--workload", "linear-mispred",
                     "--scale", "0.2", "--interval", "2000"],
                    out=out) == 0
    assert "interval 0" in out.getvalue()
    out = io.StringIO()
    assert cli_main(["simpoints", "--workload", "linear-mispred",
                     "--scale", "0.2", "--interval", "2000", "--json"],
                    out=out) == 0
    payload = json.loads(out.getvalue())
    assert payload["points"]
    assert abs(sum(p["weight"] for p in payload["points"]) - 1.0) < 1e-9


def test_cli_run_sampled(sandbox_stores):
    out = io.StringIO()
    assert cli_main(["run", "--workload", "linear-mispred",
                     "--scale", "0.2", "--sampled",
                     "--interval", "2000"], out=out) == 0
    assert "[sampled]" in out.getvalue()


def test_cli_cache_prune(sandbox_stores):
    store = CheckpointStore.from_env()
    store.put("feedc0de", {"x": 1})
    out = io.StringIO()
    assert cli_main(["cache", "prune", "--max-age-days", "0"],
                    out=out) == 0
    assert store.entries() == 0
    out = io.StringIO()
    assert cli_main(["cache", "prune"], out=out) == 2


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------
def test_run_trace_taken_flag_matches_semantics(asm):
    """A conditional branch whose taken target IS the fall-through used
    to be misclassified as not-taken by the pc-delta heuristic."""
    asm.beq("x0", "x0", "next")     # taken, target == pc + 4
    asm.label("next")
    asm.addi("t0", "t0", 1)
    asm.bne("t0", "x0", "skip")     # taken
    asm.addi("t1", "t1", 1)         # skipped
    asm.label("skip")
    asm.beq("t0", "x0", "end")      # not taken (t0 == 1)
    asm.addi("t2", "t2", 1)
    asm.label("end")
    asm.halt()
    prog = asm.finish()
    result, trace = Emulator(prog).run_trace()
    assert result.reg("t1") == 0    # the taken bne really skipped
    assert [t for _pc, t, _target in trace] == [True, True, False]


def test_chunked_core_run_is_cycle_exact(micro_programs):
    """A budget-stopped core resumes without distortion: running in
    chunks reaches the identical final cycle count and architectural
    state as one uninterrupted run (the property detailed warmup
    leans on)."""
    prog = next(iter(micro_programs.values()))
    full = O3Core(prog).run()
    core = O3Core(prog)
    core.run(max_insts=100)
    assert core.stats.committed_insts == 100
    core.run(max_insts=57)
    assert core.stats.committed_insts == 157
    core.run()
    assert core.stats.committed_insts == full.stats.committed_insts
    assert core.stats.cycles == full.stats.cycles
    assert core.arch_regs() == full.regs


def test_run_until_stops_at_budget(micro_programs):
    prog = next(iter(micro_programs.values()))
    emu = Emulator(prog)
    halted = emu.run_until(123)
    assert not halted and emu.inst_count == 123
    seen = []
    emu.run_until(125, on_inst=lambda pc, inst: seen.append(pc))
    assert len(seen) == 2


def test_workload_scale_validation():
    workload = get_workload("linear-mispred")
    for bad in (0, -1, -0.5, float("nan"), "abc", None):
        with pytest.raises(ValueError):
            workload.build(bad)
    # Scales rounding to the same key build the identical program.
    _mod_a, prog_a = workload.build(0.2)
    _mod_b, prog_b = workload.build(0.2000000004)
    assert prog_a is prog_b
