"""Sparse memory vs a bytearray reference model (hypothesis)."""

import pytest
from hypothesis import given, strategies as st

from repro.emu import SparseMemory


def test_uninitialised_reads_zero():
    mem = SparseMemory()
    assert mem.read(0x1000, 8) == 0
    assert mem.read(12345 * 8, 8) == 0


def test_sized_writes_and_reads():
    mem = SparseMemory()
    mem.write(0x100, 0x1122334455667788, 8)
    assert mem.read(0x100, 8) == 0x1122334455667788
    assert mem.read(0x100, 4) == 0x55667788
    assert mem.read(0x104, 4) == 0x11223344
    assert mem.read(0x100, 1) == 0x88
    assert mem.read(0x107, 1) == 0x11
    mem.write(0x103, 0xFF, 1)
    assert mem.read(0x100, 4) == 0xFF667788


def test_misaligned_access_raises():
    mem = SparseMemory()
    with pytest.raises(ValueError):
        mem.read(0x101, 8)
    with pytest.raises(ValueError):
        mem.write(0x102, 0, 4)
    with pytest.raises(ValueError):
        mem.read(0x100, 3)


def test_image_and_equality():
    mem = SparseMemory({0x10: 7, 0x18: 0})
    other = SparseMemory({0x10: 7})
    assert mem == other          # zero words don't matter
    other.write(0x20, 1, 8)
    assert mem != other


def test_copy_is_independent():
    mem = SparseMemory({0: 5})
    clone = mem.copy()
    clone.write(0, 6, 8)
    assert mem.read(0, 8) == 5


_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),     # byte offset
        st.sampled_from([1, 4, 8]),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    ),
    max_size=60,
)


@given(_ops)
def test_against_bytearray_reference(ops):
    mem = SparseMemory()
    ref = bytearray(256 + 8)
    for offset, size, value in ops:
        addr = offset - offset % size  # align naturally
        mem.write(0x1000 + addr, value, size)
        ref[addr:addr + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little")
    for check in range(0, 256, 8):
        expected = int.from_bytes(ref[check:check + 8], "little")
        assert mem.read(0x1000 + check, 8) == expected


def test_read_word_array():
    mem = SparseMemory()
    for i in range(4):
        mem.write(0x40 + 8 * i, i + 1, 8)
    assert mem.read_word_array(0x40, 4) == [1, 2, 3, 4]
