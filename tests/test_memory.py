"""Sparse memory vs a bytearray reference model (hypothesis)."""

import pytest
from hypothesis import given, strategies as st

from repro.emu import SparseMemory


def test_uninitialised_reads_zero():
    mem = SparseMemory()
    assert mem.read(0x1000, 8) == 0
    assert mem.read(12345 * 8, 8) == 0


def test_sized_writes_and_reads():
    mem = SparseMemory()
    mem.write(0x100, 0x1122334455667788, 8)
    assert mem.read(0x100, 8) == 0x1122334455667788
    assert mem.read(0x100, 4) == 0x55667788
    assert mem.read(0x104, 4) == 0x11223344
    assert mem.read(0x100, 1) == 0x88
    assert mem.read(0x107, 1) == 0x11
    mem.write(0x103, 0xFF, 1)
    assert mem.read(0x100, 4) == 0xFF667788


def test_misaligned_access_raises():
    mem = SparseMemory()
    with pytest.raises(ValueError):
        mem.read(0x101, 8)
    with pytest.raises(ValueError):
        mem.write(0x102, 0, 4)
    with pytest.raises(ValueError):
        mem.read(0x100, 3)


def test_image_and_equality():
    mem = SparseMemory({0x10: 7, 0x18: 0})
    other = SparseMemory({0x10: 7})
    assert mem == other          # zero words don't matter
    other.write(0x20, 1, 8)
    assert mem != other


def test_copy_is_independent():
    mem = SparseMemory({0: 5})
    clone = mem.copy()
    clone.write(0, 6, 8)
    assert mem.read(0, 8) == 5


_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),     # byte offset
        st.sampled_from([1, 4, 8]),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    ),
    max_size=60,
)


@given(_ops)
def test_against_bytearray_reference(ops):
    mem = SparseMemory()
    ref = bytearray(256 + 8)
    for offset, size, value in ops:
        addr = offset - offset % size  # align naturally
        mem.write(0x1000 + addr, value, size)
        ref[addr:addr + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little")
    for check in range(0, 256, 8):
        expected = int.from_bytes(ref[check:check + 8], "little")
        assert mem.read(0x1000 + check, 8) == expected


def test_read_word_array():
    mem = SparseMemory()
    for i in range(4):
        mem.write(0x40 + 8 * i, i + 1, 8)
    assert mem.read_word_array(0x40, 4) == [1, 2, 3, 4]


# ---------------------------------------------------------------------------
# Last-word cache: the fast path for sequential access must never serve
# a stale value, and cached state must never leak across copies.
# ---------------------------------------------------------------------------
def test_cache_sequential_subword_reads():
    mem = SparseMemory()
    mem.write(0x1000, 0x1122334455667788, 8)
    # All of these hit the cached word; each slice must be correct.
    assert mem.read(0x1000, 8) == 0x1122334455667788
    assert mem.read(0x1000, 4) == 0x55667788
    assert mem.read(0x1004, 4) == 0x11223344
    for i, byte in enumerate([0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22,
                              0x11]):
        assert mem.read(0x1000 + i, 1) == byte


def test_cache_cross_page_alternation():
    """Ping-ponging between far-apart words (different pages) must
    refill the cache each time, never cross-serve values."""
    mem = SparseMemory()
    a, b = 0x1000, 0x1000 + 64 * 1024  # 64 KiB apart
    mem.write(a, 0xAAAA, 8)
    mem.write(b, 0xBBBB, 8)
    for _ in range(3):
        assert mem.read(a, 8) == 0xAAAA
        assert mem.read(b, 8) == 0xBBBB
        assert mem.read(a + 8, 8) == 0      # uncached, untouched word
        assert mem.read(b, 4) == 0xBBBB


def test_cache_coherent_after_partial_writes():
    """Sub-word writes read-modify-write through the cache; a read of
    the same word right after must see the merged value."""
    mem = SparseMemory()
    mem.write(0x2000, 0xFFFFFFFFFFFFFFFF, 8)
    mem.write(0x2000, 0, 1)                  # clear lowest byte
    assert mem.read(0x2000, 8) == 0xFFFFFFFFFFFFFF00
    mem.write(0x2004, 0x12345678, 4)         # clear upper half
    assert mem.read(0x2000, 8) == 0x12345678FFFFFF00
    assert mem.read(0x2004, 4) == 0x12345678


def test_cache_does_not_leak_across_copies():
    mem = SparseMemory()
    mem.write(0x3000, 111, 8)
    assert mem.read(0x3000, 8) == 111        # warm mem's cache
    clone = mem.copy()
    clone.write(0x3000, 222, 8)              # warm clone's cache
    assert mem.read(0x3000, 8) == 111
    assert clone.read(0x3000, 8) == 222
    mem.write(0x3000, 333, 8)
    assert clone.read(0x3000, 8) == 222


def test_checkpoint_mem_delta_round_trip():
    """nonzero_words -> image constructor round-trips with warm caches
    on both sides (the checkpoint/restore path in the harness)."""
    mem = SparseMemory()
    for i in range(8):
        mem.write(0x4000 + 8 * i, (i * 0x1111) & 0xFFFF, 8)
    mem.write(0x4000, 0, 8)                  # zeroed word drops out
    assert mem.read(0x4000 + 8, 8) == 0x1111  # warm the cache
    delta = mem.nonzero_words()
    assert 0x4000 not in delta
    restored = SparseMemory(dict(delta))
    assert restored == mem
    assert restored.read(0x4000 + 8, 8) == 0x1111
    # Diverge after restore: equality must break both ways.
    restored.write(0x4000, 5, 8)
    assert restored != mem
