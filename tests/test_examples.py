"""Smoke tests: the shipped examples must run end to end."""

import importlib.util
import pathlib
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    path = _EXAMPLES / ("%s.py" % name)
    spec = importlib.util.spec_from_file_location("example_%s" % name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {p.name for p in _EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "gap_speedup.py", "reconvergence_profile.py",
            "hardware_budget.py", "custom_workload.py"} <= names


def test_quickstart_runs(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "reconvergences detected" in out
    assert "speedup" in out


def test_hardware_budget_runs(capsys):
    _load("hardware_budget").main()
    out = capsys.readouterr().out
    assert "3.528" in out or "3.53" in out
    assert "Reconvergence detection" in out


@pytest.mark.slow
def test_custom_workload_runs(capsys):
    _load("custom_workload").main()
    out = capsys.readouterr().out
    assert "sum of first 25 odd numbers = 625" in out
