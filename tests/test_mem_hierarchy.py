"""Cache timing model: LRU correctness and hierarchy latencies."""

from hypothesis import given, strategies as st

from repro.mem import Cache, MemoryHierarchy


def test_cache_hit_after_fill():
    cache = Cache("t", size_bytes=1024, assoc=2, line_bytes=64)
    assert not cache.lookup(0x100)
    cache.fill(0x100)
    assert cache.lookup(0x100)
    assert cache.lookup(0x13F)   # same line
    assert not cache.lookup(0x140)


def test_cache_lru_eviction():
    # 2 ways, 1 set: 128-byte cache with 64-byte lines.
    cache = Cache("t", size_bytes=128, assoc=2, line_bytes=64)
    cache.fill(0 * 64)
    cache.fill(2 * 64)
    cache.lookup(0)              # make line 0 most recent
    cache.fill(4 * 64)           # evicts line 2*64
    assert cache.lookup(0)
    assert not cache.lookup(2 * 64)
    assert cache.lookup(4 * 64)


def test_dirty_writeback_counted():
    cache = Cache("t", size_bytes=128, assoc=1, line_bytes=64)
    cache.fill(0, dirty=True)
    wrote_back = cache.fill(128)   # conflicting set, dirty victim
    assert wrote_back
    assert cache.writebacks == 1


@given(st.lists(st.integers(min_value=0, max_value=31), max_size=200))
def test_cache_matches_reference_lru(addresses):
    """Fully-associative reference LRU vs the model with 1 set."""
    cache = Cache("t", size_bytes=4 * 64, assoc=4, line_bytes=64)
    reference = []  # list of line ids, most recent last
    for line in addresses:
        addr = line * 64
        hit = cache.lookup(addr)
        ref_hit = line in reference
        assert hit == ref_hit
        if ref_hit:
            reference.remove(line)
        elif len(reference) == 4:
            reference.pop(0)
        reference.append(line)
        cache.fill(addr)


def test_hierarchy_latencies():
    hier = MemoryHierarchy(l1_size=128, l1_assoc=2, l1_latency=3,
                           l2_size=1024, l2_assoc=2, l2_latency=12,
                           dram_latency=120)
    assert hier.access(0x1000) == 120       # cold
    assert hier.access(0x1000) == 3         # L1 hit
    assert hier.access(0x1008) == 3         # same line
    # Evict from the single-set L1 with lines that land in *different*
    # L2 sets, so 0x1000 stays L2-resident.
    hier.access(0x1040)
    hier.access(0x1080)
    assert hier.access(0x1000) == 12        # L1 miss, L2 hit


def test_hierarchy_stats():
    hier = MemoryHierarchy()
    hier.access(0)
    hier.access(0)
    stats = hier.stats()
    assert stats["l1_hits"] == 1
    assert stats["l1_misses"] == 1
    assert stats["dram_accesses"] == 1
