"""Deterministic RNG and the hash64 primitive."""

from hypothesis import given, strategies as st

from repro.utils.rng import XorShift64, mix_hash
from repro.utils.bits import MASK64


def test_determinism():
    a = XorShift64(123)
    b = XorShift64(123)
    assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]


def test_zero_seed_is_remapped():
    rng = XorShift64(0)
    assert rng.state != 0
    assert rng.next() != 0


@given(st.integers(min_value=0, max_value=MASK64))
def test_mix_hash_in_range_and_deterministic(value):
    h = mix_hash(value)
    assert 0 <= h <= MASK64
    assert h == mix_hash(value)


def test_mix_hash_spreads_low_bits():
    # Consecutive inputs should give ~uniform low bits (the property the
    # microbenchmarks' hard-to-predict branches rely on).
    ones = sum(mix_hash(i) & 1 for i in range(4000))
    assert 1700 < ones < 2300


@given(st.integers(min_value=1, max_value=1 << 62),
       st.integers(min_value=0, max_value=1000))
def test_randint_bounds(seed, span):
    rng = XorShift64(seed)
    lo, hi = 10, 10 + span
    for _ in range(20):
        assert lo <= rng.randint(lo, hi) <= hi


def test_shuffle_is_permutation():
    rng = XorShift64(7)
    items = list(range(50))
    rng.shuffle(items)
    assert sorted(items) == list(range(50))


def test_sample_indices_distinct():
    rng = XorShift64(9)
    sample = rng.sample_indices(100, 30)
    assert len(set(sample)) == 30
    assert all(0 <= i < 100 for i in sample)
