#!/usr/bin/env python3
"""Author your own workload two ways and sweep MSSR configurations.

Shows both authoring paths: the restricted-Python compiler (with its
built-in native oracle) and the textual assembler, then sweeps stream
counts to find the configuration sweet spot for the kernel.

Run:  python examples/custom_workload.py
"""

from repro import (
    Module, array_ref, hash64, assemble_text,
    O3Core, baseline_config, mssr_config, Emulator,
)
from repro.utils.bits import to_signed


# -- path 1: the compiler DSL ---------------------------------------------
def histogram(data, bins, n):
    """Data-dependent branches (bin comparisons) over random input."""
    for i in range(n):
        v = hash64(i) & 255
        if v < 64:
            bins[0] = bins[0] + 1
        elif v < 128:
            bins[1] = bins[1] + 1
        elif v < 192:
            bins[2] = bins[2] + 1
        else:
            bins[3] = bins[3] + 1
        data[i & 127] = v
    return bins[0] * 1000000 + bins[1] * 10000 + bins[2] * 100 + bins[3]


# -- path 2: hand-written assembly ----------------------------------------
_ASM = """
    # sum of first n odd numbers == n^2
    li t0, 0          # i
    li t1, 0          # sum
    li t2, 25         # n
loop:
    slli t3, t0, 1
    addi t3, t3, 1
    add t1, t1, t3
    addi t0, t0, 1
    blt t0, t2, loop
    halt
"""


def main():
    # Compiled kernel with oracle check.
    mod = Module()
    mod.add_function(histogram)
    mod.array("data", 128)
    mod.array("bins", 4)
    prog = mod.build("histogram",
                     [array_ref("data"), array_ref("bins"), 500])
    expected, _ = mod.run_native()

    print("MSSR stream-count sweep on the histogram kernel:")
    base = O3Core(prog, baseline_config()).run()
    assert to_signed(Module.read_result(prog, base.memory)) == expected
    print("  baseline : %6d cycles  IPC %.3f  (%d mispredicts)"
          % (base.stats.cycles, base.stats.ipc,
             base.stats.cond_mispredicts))
    for streams in (1, 2, 4, 8):
        run = O3Core(prog, mssr_config(num_streams=streams)).run()
        assert to_signed(Module.read_result(prog, run.memory)) == expected
        print("  %d stream%s: %6d cycles  IPC %.3f  (%+.2f%%, "
              "%d reused / %d reconvergences)"
              % (streams, "s" if streams > 1 else " ", run.stats.cycles,
                 run.stats.ipc,
                 100 * (base.stats.cycles / run.stats.cycles - 1),
                 run.stats.reuse_successes, run.stats.reconvergences))

    # Assembly program through the same pipeline.
    asm_prog = assemble_text(_ASM)
    emu = Emulator(asm_prog).run()
    core = O3Core(asm_prog, baseline_config()).run()
    assert core.regs == emu.regs
    print("\nassembly kernel: sum of first 25 odd numbers = %d "
          "(simulated in %d cycles)" % (core.reg("t1"), core.stats.cycles))


if __name__ == "__main__":
    main()
