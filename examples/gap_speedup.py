#!/usr/bin/env python3
"""Run the GAP suite under baseline / DCI / MSSR / RI and compare IPC.

Reproduces the flavour of the paper's Figure 12 in one script.

Run:  python examples/gap_speedup.py [scale]
"""

import sys

from repro.analysis import run_workload, format_table
from repro.workloads.registry import suite_names


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    rows = []
    for name in suite_names("gap"):
        base = run_workload(name, "baseline", scale)
        dci = run_workload(name, "mssr", scale, streams=1, wpb=16, log=64)
        mssr = run_workload(name, "mssr", scale, streams=4, wpb=16, log=64)
        ri = run_workload(name, "ri", scale, sets=64, ways=4)
        dir_ = run_workload(name, "dir", scale, sets=64, ways=4)
        rows.append([
            name,
            "%.3f" % base.ipc,
            "%+.2f%%" % (100 * (dci.ipc / base.ipc - 1)),
            "%+.2f%%" % (100 * (mssr.ipc / base.ipc - 1)),
            "%+.2f%%" % (100 * (ri.ipc / base.ipc - 1)),
            "%+.2f%%" % (100 * (dir_.ipc / base.ipc - 1)),
            mssr.reuse_successes,
            mssr.reconvergences,
        ])
    print(format_table(
        ["bench", "base IPC", "DCI(1-strm)", "MSSR(4-strm)", "RI(4-way)",
         "DIR(4-way)", "reused", "reconv"],
        rows, title="GAP suite, scale=%.2f" % scale))


if __name__ == "__main__":
    main()
