#!/usr/bin/env python3
"""Run the GAP suite under baseline / DCI / MSSR / RI and compare IPC.

Reproduces the flavour of the paper's Figure 12 in one script. All
(workload x config) points are submitted to the simulation harness as
one batch, so shared runs are deduplicated, results persist to the
on-disk cache, and ``--jobs N`` (or ``REPRO_JOBS``) simulates cache
misses on N worker processes.

Run:  python examples/gap_speedup.py [scale] [--jobs 4]
"""

import argparse

from repro.analysis import format_table
from repro.harness import SimJob, submit
from repro.workloads.registry import suite_names

CONFIGS = (
    ("DCI(1-strm)", "mssr", {"streams": 1, "wpb": 16, "log": 64}),
    ("MSSR(4-strm)", "mssr", {"streams": 4, "wpb": 16, "log": 64}),
    ("RI(4-way)", "ri", {"sets": 64, "ways": 4}),
    ("DIR(4-way)", "dir", {"sets": 64, "ways": 4}),
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", type=float, default=0.15)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS)")
    args = parser.parse_args()

    base_jobs = {name: SimJob(name, "baseline", args.scale)
                 for name in suite_names("gap")}
    config_jobs = {(name, label): SimJob(name, kind, args.scale, params)
                   for name in base_jobs
                   for label, kind, params in CONFIGS}
    results = submit(list(base_jobs.values()) + list(config_jobs.values()),
                     n_jobs=args.jobs)

    rows = []
    for name in base_jobs:
        base = results[base_jobs[name]]
        row = [name, "%.3f" % base.ipc]
        for label, _kind, _params in CONFIGS:
            stats = results[config_jobs[(name, label)]]
            row.append("%+.2f%%" % (100 * (stats.ipc / base.ipc - 1)))
        mssr = results[config_jobs[(name, "MSSR(4-strm)")]]
        row += [mssr.reuse_successes, mssr.reconvergences]
        rows.append(row)
    print(format_table(
        ["bench", "base IPC"] + [label for label, _, _ in CONFIGS]
        + ["reused", "reconv"],
        rows, title="GAP suite, scale=%.2f" % args.scale))


if __name__ == "__main__":
    main()
