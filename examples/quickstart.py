#!/usr/bin/env python3
"""Quickstart: write a kernel, compile it, and watch squash reuse work.

Run:  python examples/quickstart.py
"""

from repro import (
    Module, array_ref, hash64,
    O3Core, baseline_config, mssr_config,
)
from repro.compiler import Module as _Module
from repro.utils.bits import to_signed


# 1. Write a kernel in the restricted-Python DSL. `hash64` produces
#    pseudo-random values, so the two nested branches below are
#    hard-to-predict — exactly the situation squash reuse targets.
def kernel(arr, n):
    acc = 0
    for i in range(n):
        noise = hash64(i)
        if noise & 1:
            if noise & 2:
                acc += noise & 15
            acc -= noise & 7
        # Control-independent work: executed whichever way the branches
        # above go, so its results survive in the squashed stream.
        t = (i * 7 + (noise & 31)) & 1023
        arr[i & 63] = t
        acc += t
    return acc & 0xFFFFFF


def main():
    # 2. Compile it together with its data.
    mod = Module()
    mod.add_function(kernel)
    mod.array("arr", 64)
    prog = mod.build("kernel", [array_ref("arr"), 400])

    # 3. The same source runs natively as the oracle.
    expected, _ = mod.run_native()

    # 4. Simulate on the out-of-order core, without and with
    #    Multi-Stream Squash Reuse.
    base = O3Core(prog, baseline_config()).run()
    mssr = O3Core(prog, mssr_config(num_streams=4)).run()

    for name, result in (("baseline", base), ("mssr", mssr)):
        got = to_signed(_Module.read_result(prog, result.memory))
        assert got == expected, (name, got, expected)

    print("oracle result           : %d (all configs match)" % expected)
    print("baseline                : %6d cycles, IPC %.3f"
          % (base.stats.cycles, base.stats.ipc))
    print("multi-stream squash reuse: %5d cycles, IPC %.3f"
          % (mssr.stats.cycles, mssr.stats.ipc))
    print("speedup                 : %+.2f%%"
          % (100.0 * (base.stats.cycles / mssr.stats.cycles - 1)))
    print("reconvergences detected : %d" % mssr.stats.reconvergences)
    print("instructions reused     : %d (of %d tested)"
          % (mssr.stats.reuse_successes, mssr.stats.reuse_tests))


if __name__ == "__main__":
    main()
