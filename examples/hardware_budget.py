#!/usr/bin/env python3
"""Hardware cost of the mechanism (the paper's Tables 2 and 4).

Sweeps storage cost across stream counts / capacities and prints the
analytical synthesis estimates for the two critical circuits.

Run:  python examples/hardware_budget.py
"""

from repro.analysis import table2_storage, table4_synthesis, format_table


def main():
    rows = []
    for streams, wpb, log in [(1, 16, 64), (2, 16, 64), (4, 16, 64),
                              (4, 64, 256), (8, 16, 64)]:
        report = table2_storage(streams, wpb, log)
        rows.append(["N=%d M=%d P=%d" % (streams, wpb, log),
                     report["constant_kb"],
                     report["variable_kb"],
                     report["total_kb"]])
    print(format_table(
        ["config", "constant KB", "variable KB", "total KB"],
        rows, title="Squash-reuse storage (Table 2 model)"))
    print("(paper's N=4 M=16 P=64 point: 2.30 + 1.23 = 3.53 KB)\n")

    synth = table4_synthesis()
    rows = [[r["config"], r["logic_levels"], r["area_um2"], r["power_mw"]]
            for r in synth["reconvergence_detection"]]
    print(format_table(["WPB size", "logic levels", "area um^2",
                        "power mW @0.7V"],
                       rows, title="Reconvergence detection (Table 4)"))
    rows = [[r["config"], r["logic_levels"], r["area_um2"], r["power_mw"]]
            for r in synth["reuse_test"]]
    print()
    print(format_table(["pipeline", "logic levels", "area um^2",
                        "power mW @0.7V"],
                       rows, title="Reuse test, 64-entry squash log"))


if __name__ == "__main__":
    main()
