#!/usr/bin/env python3
"""Profile reconvergence behaviour (the paper's Figures 4 and 11).

Shows, per workload, how reconvergence splits into simple /
software-induced / hardware-induced multi-stream cases, and the
aggregate stream-distance distribution — the two observations that
motivate tracking multiple squashed streams.

Runs through the simulation harness: results are cached on disk and
``--jobs N`` (or ``REPRO_JOBS``) parallelises cold simulations.

Run:  python examples/reconvergence_profile.py [scale] [--jobs 4]
"""

import argparse

from repro.analysis import (
    fig4_reconvergence_types,
    fig11_stream_distance,
    format_table,
)
from repro.analysis.experiments import multi_stream_fraction, distance_cdf


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", type=float, default=0.12)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS)")
    args = parser.parse_args()
    scale = args.scale

    breakdown = fig4_reconvergence_types(scale, jobs=args.jobs)
    rows = []
    for name, (simple, software, hardware) in sorted(breakdown.items()):
        rows.append([name,
                     "%5.1f%%" % (100 * simple),
                     "%5.1f%%" % (100 * software),
                     "%5.1f%%" % (100 * hardware),
                     "%5.1f%%" % (100 * (software + hardware))])
    print(format_table(
        ["workload", "simple", "sw-induced", "hw-induced",
         "missed by 1-stream"],
        rows, title="Reconvergence type breakdown (Figure 4)"))

    fractions, avg = multi_stream_fraction(breakdown)
    peak = max(fractions.items(), key=lambda kv: kv[1]) if fractions \
        else ("-", 0.0)
    print("\nmulti-stream share: average %.1f%%, max %.1f%% (%s)"
          % (100 * avg, 100 * peak[1], peak[0]))
    print("(paper: average 10%, up to 31%)")

    hist = fig11_stream_distance(scale, jobs=args.jobs)
    print("\nStream distance CDF (Figure 11):")
    for distance, cum in distance_cdf(hist):
        print("  distance <= %d : %5.1f%%" % (distance, 100 * cum))


if __name__ == "__main__":
    main()
