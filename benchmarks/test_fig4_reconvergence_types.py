"""Figure 4: breakdown of reconvergence types.

Paper: most GAP benchmarks reconverge simply; several SPECint workloads
need two or more squashed streams for 15% (mcf) to 43% (omnetpp) of
their reconvergence. The abstract's companion statistic: on average 10%
(up to 31%) of opportunities are missed by single-stream tracking.
"""

from repro.analysis import fig4_reconvergence_types, format_table
from repro.analysis.experiments import multi_stream_fraction


def test_fig4_reconvergence_breakdown(benchmark, bench_scale, bench_jobs):
    breakdown = benchmark.pedantic(
        fig4_reconvergence_types,
        kwargs={"scale": bench_scale, "jobs": bench_jobs},
        rounds=1, iterations=1)

    rows = []
    for name, (simple, software, hardware) in sorted(breakdown.items()):
        rows.append([name,
                     "%5.1f%%" % (100 * simple),
                     "%5.1f%%" % (100 * software),
                     "%5.1f%%" % (100 * hardware)])
    print()
    print(format_table(["workload", "simple", "software", "hardware"],
                       rows, title="Figure 4: reconvergence types"))

    fractions, avg = multi_stream_fraction(breakdown)
    peak_name, peak = max(fractions.items(), key=lambda kv: kv[1])
    print("multi-stream share: avg %.1f%%, max %.1f%% (%s)"
          % (100 * avg, 100 * peak, peak_name))
    print("(paper: avg 10%, max 31%)")

    # Fractions are well-formed.
    for name, parts in breakdown.items():
        total = sum(parts)
        assert total == 0.0 or abs(total - 1.0) < 1e-9, name
    # Multi-stream reconvergence genuinely occurs somewhere.
    assert peak > 0.0
    # ...and simple reconvergence still dominates overall.
    simple_avg = sum(p[0] for p in breakdown.values() if sum(p)) / max(
        1, sum(1 for p in breakdown.values() if sum(p)))
    assert simple_avg > 0.3
