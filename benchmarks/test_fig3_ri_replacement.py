"""Figure 3: RI reuse-table replacement frequency.

The paper's heat map shows dense replacements at 1-way associativity
that largely disappear at 4 ways (code blocks cluster in contiguous
sets). We print an ASCII density strip per configuration and check the
total replacement count drops monotonically with associativity.
"""

from repro.analysis import fig3_ri_replacements


def _density_strip(counts, buckets=32):
    if not counts:
        return ""
    chunk = max(1, len(counts) // buckets)
    glyphs = " .:-=+*#%@"
    peak = max(max(counts), 1)
    out = []
    for i in range(0, len(counts), chunk):
        val = sum(counts[i:i + chunk]) / chunk
        out.append(glyphs[min(int(val / peak * (len(glyphs) - 1) * 3),
                              len(glyphs) - 1)])
    return "".join(out)


def test_fig3_replacement_frequency(benchmark, bench_scale, bench_jobs):
    results = benchmark.pedantic(
        fig3_ri_replacements,
        kwargs={"scale": max(bench_scale, 0.15), "jobs": bench_jobs},
        rounds=1, iterations=1)

    print()
    print("Figure 3: RI table replacements per set "
          "(dark = frequent replacement)")
    totals = {}
    for (bench, ways), counts in sorted(results.items()):
        total = sum(counts)
        totals[(bench, ways)] = total
        print("  %-15s %d-way  total=%-6d  [%s]"
              % (bench, ways, total, _density_strip(counts)))

    for bench in ("nested-mispred", "linear-mispred"):
        assert totals[(bench, 1)] >= totals[(bench, 2)] >= \
            totals[(bench, 4)], bench
        # Low associativity must show real conflict pressure.
        assert totals[(bench, 1)] > 0, bench
