"""Branch-predictor characterization signatures (brchar suite).

Black-box dissection of the frontend predictors: each probe is
constructed so that exactly one predictor mechanism can (or cannot)
capture it, and the misprediction signature identifies which predictor
is really running. Two layers are asserted:

* **Driver signatures** — synthetic traces fed straight into predictor
  instances (deterministic, scale-independent):

    - trip-48 loop: beyond gshare's 12-bit history, inside TAGE's
      tagged-table reach (the history-length signature);
    - trip-160 loop: beyond TAGE's longest table, countable only by
      the loop predictor (the loop-exit signature);
    - 90%-biased history-free branch: the statistical corrector's
      bias tracking beats pure history prediction;
    - 256 oppositely-biased branches on scaled-down tables: TAGE tags
      survive destructive aliasing that floors gshare.

* **In-core signatures** — the compiled ``brchar`` workloads run
  through the full pipeline, where speculative-state repair (loop
  iteration checkpoints, history rewind) must hold for the same
  separations to appear.
"""

from repro.analysis import format_table
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import O3Core
from repro.workloads.brchar.driver import characterization_table
from repro.workloads.registry import get_workload, suite_names

KINDS = ("gshare", "tage", "tage-scl")


def test_driver_signature_matrix(benchmark):
    rows = benchmark.pedantic(characterization_table,
                              rounds=1, iterations=1)
    matrix = {(r["probe"], r["predictor"]): r for r in rows}

    def mpb(probe, kind):
        return matrix[(probe, kind)]["mpb"]

    headers = ["probe"] + list(KINDS)
    probes = []
    for r in rows:
        if r["probe"] not in probes:
            probes.append(r["probe"])
    print()
    print(format_table(
        headers,
        [[p] + ["%.4f" % mpb(p, k) for k in KINDS] for p in probes],
        title="brchar driver signatures (mispredicts per branch)"))

    # Control: a trip-8 loop is in reach of every history predictor.
    for kind in KINDS:
        assert mpb("trip8", kind) == 0.0, kind

    # History-length signature: gshare (12-bit history) mispredicts
    # every trip-48 exit; TAGE's geometric tables capture it fully.
    assert mpb("trip48", "gshare") > 0.015
    assert mpb("trip48", "tage") == 0.0
    assert mpb("trip48", "tage-scl") == 0.0

    # Loop-exit signature: trip 160 is beyond even TAGE's longest
    # history table, but trivially countable.
    assert mpb("trip160", "gshare") > 0.004
    assert mpb("trip160", "tage") > 0.004
    assert mpb("trip160", "tage-scl") == 0.0

    # Pure history correlation (control): all capture a short pattern.
    for kind in KINDS:
        assert mpb("pattern6", kind) == 0.0, kind

    # SC signature: on a history-uncorrelated biased branch, the
    # statistical corrector recovers (some of) the base rate.
    assert mpb("bias900", "tage-scl") <= mpb("bias900", "tage")
    assert mpb("bias900", "tage") < mpb("bias900", "gshare")

    # Aliasing signature: with scaled-down tables, untagged gshare is
    # destroyed by oppositely-biased neighbours; TAGE tags survive.
    assert mpb("alias256", "gshare") > 0.3
    assert mpb("alias256", "tage") < 0.1
    assert mpb("alias256", "tage-scl") <= mpb("alias256", "tage")


def _run_matrix(scale):
    results = {}
    for name in suite_names("brchar"):
        _module, program = get_workload(name).build(scale)
        for kind in KINDS:
            core = O3Core(program, CoreConfig(predictor=kind))
            stats = core.run().stats
            results[(name, kind)] = (stats.cond_mispredicts,
                                     stats.cond_branches)
    return results


def test_incore_signature_matrix(benchmark, bench_scale):
    # Below ~0.4 the trip-160 workload has too few loop executions to
    # train confidence, so floor the scale rather than skip signatures.
    scale = max(bench_scale, 0.5)
    results = benchmark.pedantic(_run_matrix, args=(scale,),
                                 rounds=1, iterations=1)

    def miss(name, kind):
        return results[(name, kind)][0]

    print()
    print(format_table(
        ["workload"] + list(KINDS),
        [[n] + [str(miss(n, k)) for k in KINDS]
         for n in suite_names("brchar")],
        title="brchar in-core cond mispredicts (scale %.2f)" % scale))

    # Control: everyone captures the trip-8 loop (< 2% of branches).
    for kind in KINDS:
        mis, branches = results[("brchar-hist8", kind)]
        assert mis < 0.02 * branches, (kind, mis, branches)

    # Trip-48: beyond gshare; the loop predictor (and only it) nails
    # the exits — in-core TAGE has too few exits to warm its long
    # tables, which is itself part of the signature.
    assert miss("brchar-hist48", "gshare") >= miss("brchar-hist48", "tage")
    assert 4 * miss("brchar-hist48", "tage-scl") \
        < miss("brchar-hist48", "tage")

    # Trip-160: loop-predictor territory; speculative iteration counts
    # must survive pipeline squashes for this margin to appear.
    assert miss("brchar-loop160", "tage") <= miss("brchar-loop160", "gshare")
    assert 2 * miss("brchar-loop160", "tage-scl") \
        < miss("brchar-loop160", "tage")

    # SC bias recovery on a history-free branch.
    assert miss("brchar-scbias", "tage-scl") <= miss("brchar-scbias", "tage")
    assert miss("brchar-scbias", "tage") < miss("brchar-scbias", "gshare")

    # Aliasing: tagged tables shrug off what floors gshare.
    assert miss("brchar-alias", "gshare") > 2 * miss("brchar-alias", "tage")
    assert miss("brchar-alias", "tage-scl") \
        <= miss("brchar-alias", "tage") + 5
