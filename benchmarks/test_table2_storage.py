"""Table 2: additional storage for the squash-reuse scheme.

The formulas are implemented exactly; this bench checks the paper's
published totals to the digit: constant 2.30 KB, variable 1.23 KB,
total 3.53 KB at N=4, M=16, P=64.
"""

from repro.analysis import table2_storage, format_table
from repro.hwmodels.storage import StorageModel


def test_table2_storage(benchmark):
    report = benchmark.pedantic(table2_storage, rounds=1, iterations=1)

    rows = [
        ["WPB entry", "%d bits" % report["wpb_entry_bits"]],
        ["Squash Log entry", "%d bits" % report["squash_log_entry_bits"]],
        ["ROB RGIDs", "%d bits" % report["rob_bits"]],
        ["RAT (+checkpoints)", "%d bits" % report["rat_bits"]],
        ["pointers", "%d bits" % report["pointer_bits"]],
        ["constant", "%.2f KB" % report["constant_kb"]],
        ["variable", "%.2f KB" % report["variable_kb"]],
        ["total", "%.2f KB" % report["total_kb"]],
    ]
    print()
    print(format_table(["structure", "cost"], rows,
                       title="Table 2: storage (N=4, M=16, P=64)"))

    assert report["wpb_entry_bits"] == 23
    assert report["squash_log_entry_bits"] == 33
    assert report["constant_bits"] == 18816
    assert round(report["constant_kb"], 2) == 2.30
    assert round(report["variable_kb"], 2) == 1.23
    assert round(report["total_kb"], 2) == 3.53

    # Closed-form formula and structural sum must agree for any config.
    for n, m, p in [(1, 16, 64), (2, 32, 128), (4, 16, 64), (8, 64, 256)]:
        model = StorageModel(num_streams=n, wpb_entries=m,
                             squash_log_entries=p)
        assert model.variable_bits() == model.variable_bits_formula(), \
            (n, m, p)


def test_storage_scaling(benchmark):
    def sweep():
        return [StorageModel(num_streams=n).total_bits()
                for n in (1, 2, 4, 8, 16)]
    totals = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Monotone in stream count; constant part dominates at small N.
    assert all(a < b for a, b in zip(totals, totals[1:]))
