"""Shared configuration for the reproduction benchmarks.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload scale factor (default 0.1; the paper
  runs SimPoints/full inputs, we run proportionally shrunk kernels).
* ``REPRO_FULL=1`` — include the expensive upper-bound configurations
  (e.g. Figure 10's 4-stream x 1024-entry point).
* ``REPRO_JOBS`` — worker processes for the simulation harness
  (default 1 = serial; 0 = one per CPU). See :mod:`repro.harness`.
* ``REPRO_CACHE_DIR`` — on-disk result cache directory (default
  ``~/.cache/repro-sim``; set to ``off`` to disable). A warm cache
  makes benchmark reruns skip every simulation.
"""

import pytest

from repro.config import envreg
from repro.harness.runner import default_jobs


def _scale():
    return envreg.get("REPRO_BENCH_SCALE")


def _full():
    return envreg.get("REPRO_FULL")


@pytest.fixture(scope="session")
def bench_scale():
    return _scale()


@pytest.fixture(scope="session")
def full_mode():
    return _full()


@pytest.fixture(scope="session")
def bench_jobs():
    """Harness worker count (``REPRO_JOBS``)."""
    return default_jobs()
