"""Figure 10: IPC improvement across multi-stream configurations.

Paper: average IPC gains of 2.2% (SPECint2006), 0.8% (SPECint2017) and
2.4% (GAP) at 4 streams x 64-entry WPB, with maxima on astar (8.9%),
bc (6.1%) and cc (4.0%); 1 stream x 16 entries yields roughly half the
benefit; mcf/omnetpp barely move (memory bound); xz can go negative
(memory-order violations on reused loads).
"""

import os

from repro.analysis import fig10_ipc_sweep, format_table
from repro.analysis.experiments import (
    fig10_suite_averages,
    FIG10_CONFIGS,
    FIG10_UPPER_BOUND,
)


def test_fig10_ipc_improvements(benchmark, bench_scale, full_mode,
                                bench_jobs):
    configs = FIG10_CONFIGS + ((FIG10_UPPER_BOUND,) if full_mode else ())
    sweep = benchmark.pedantic(
        fig10_ipc_sweep,
        kwargs={"scale": bench_scale, "configs": configs,
                "jobs": bench_jobs},
        rounds=1, iterations=1)

    headers = ["workload"] + ["%dx%d" % c for c in configs]
    print()
    for suite, rows in sweep.items():
        table_rows = []
        for workload, row in rows.items():
            table_rows.append(
                [workload] + ["%+.2f%%" % (100 * row[c]) for c in configs])
        print(format_table(headers, table_rows,
                           title="Figure 10 (%s)" % suite))
        print()

    averages = fig10_suite_averages(sweep)
    for suite, avg_row in averages.items():
        line = ", ".join("%dx%d: %+.2f%%" % (c[0], c[1], 100 * v)
                         for c, v in sorted(avg_row.items()))
        print("%s averages: %s" % (suite, line))
    print("(paper at 4x64: spec2006 +2.2%, spec2017 +0.8%, gap +2.4%)")

    # Shape checks: the mechanism helps overall at the paper's preferred
    # configuration, and at least one workload gains noticeably.
    best_config = (4, 64)
    gains = [row[best_config] for rows in sweep.values()
             for row in rows.values()]
    assert max(gains) > 0.005, "no workload gained >0.5%"
    overall = sum(gains) / len(gains)
    assert overall > -0.01, "mechanism hurt overall: %.3f" % overall
