"""Table 1: microbenchmark speedups — MSSR streams vs RI associativity.

Paper values (runtime improvement over no-squash-reuse baseline):

    nested-mispred : MSSR 1/2/4 streams = 2.4 / 14.3 / 23.4 %
                     RI 1/2/4 ways      = -0.1 / 1.9 / 17.9 %
    linear-mispred : MSSR 1/2/4 streams = 6.5 / 16.7 / 19.7 %
                     RI 1/2/4 ways      = 1.7 / 6.2 / 16.4 %

Shape targets: multi-stream beats single-stream on both variants; the
nested variant needs more streams to catch up (hardware-induced
reconvergence); RI at low associativity underperforms.
"""

from repro.analysis import table1_microbench, format_table


def test_table1_microbench(benchmark, bench_scale, bench_jobs):
    results = benchmark.pedantic(
        table1_microbench,
        kwargs={"scale": max(bench_scale, 0.15), "jobs": bench_jobs},
        rounds=1, iterations=1)

    headers = ["bench", "MSSR 1", "MSSR 2", "MSSR 4",
               "RI 1w", "RI 2w", "RI 4w"]
    rows = []
    for bench, row in results.items():
        rows.append([bench] + ["%+.2f%%" % (100 * row[key]) for key in
                               [("mssr", 1), ("mssr", 2), ("mssr", 4),
                                ("ri", 1), ("ri", 2), ("ri", 4)]])
    print()
    print(format_table(headers, rows,
                       title="Table 1: microbenchmark improvements"))

    for bench, row in results.items():
        # Multi-stream tracking must add value over a single stream.
        assert row[("mssr", 4)] > row[("mssr", 1)] - 0.005, bench
        # 4-stream MSSR is a clear win on the microbenchmarks.
        assert row[("mssr", 4)] > 0.0, bench
