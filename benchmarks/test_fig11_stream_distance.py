"""Figure 11: reconvergence stream-distance breakdown.

Paper: over 50% of reconvergences occur between neighbouring streams
(distance 1) and 90-95% within a distance of three — the analysis that
justifies tracking 4 streams.
"""

from repro.analysis import fig11_stream_distance
from repro.analysis.experiments import distance_cdf


def test_fig11_stream_distance(benchmark, bench_scale, bench_jobs):
    hist = benchmark.pedantic(
        fig11_stream_distance,
        kwargs={"scale": bench_scale, "jobs": bench_jobs},
        rounds=1, iterations=1)

    cdf = distance_cdf(hist)
    print()
    print("Figure 11: stream distance distribution")
    total = sum(hist.values())
    for distance, cum in cdf:
        share = hist[distance] / total if total else 0.0
        print("  distance %2d : %6.1f%%  (cumulative %5.1f%%)"
              % (distance, 100 * share, 100 * cum))
    print("(paper: >50% at distance 1; 90-95% within distance 3)")

    assert total > 0, "no reconvergence observed at all"
    by_distance = dict(cdf)
    # Neighbouring streams dominate.
    assert hist.get(1, 0) / total > 0.35
    # The vast majority of reuse is reachable within a few streams.
    within4 = max(cum for d, cum in cdf if d <= 4) if any(
        d <= 4 for d, _ in cdf) else 0.0
    assert within4 > 0.6
    assert by_distance  # silence lint: cdf is non-empty here
