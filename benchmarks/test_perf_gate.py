"""Perf regression gate: fresh throughput vs the checked-in baseline.

Lives in ``benchmarks/`` (outside the tier-1 ``tests/`` path) because it
measures wall-clock throughput — meaningful on a quiet machine, noisy in
a shared test run. Run it explicitly::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_gate.py -q

Environment knobs (used by the CI smoke step):

* ``REPRO_PERF_THRESHOLD`` — allowed normalised-throughput drop
  (default 0.15; CI uses a looser 0.20 on shared runners).
* ``REPRO_PERF_CURRENT`` — path to an already-measured report to gate
  instead of re-measuring (CI reuses the report it just produced for
  the artifact upload).

Comparisons are calibration-normalised (see :mod:`repro.perf.bench`),
so the checked-in absolute numbers do not need to match this machine.
"""

import copy
import json
import os

import pytest

from repro.perf.bench import (DEFAULT_MATRIX, build_report,
                              calibration_kops, compare_reports,
                              load_report, matrix_from_report, run_bench)

BASELINE_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_PIPELINE.json")


def _threshold():
    from repro.config import envreg
    return envreg.get("REPRO_PERF_THRESHOLD")


@pytest.fixture(scope="module")
def baseline():
    assert os.path.exists(BASELINE_PATH), \
        "BENCH_PIPELINE.json baseline missing; regenerate with " \
        "`python -m repro.harness perf`"
    return load_report(BASELINE_PATH)


def test_baseline_schema(baseline):
    """The checked-in baseline is well-formed and covers the matrix."""
    assert baseline["version"] >= 1
    assert baseline["calibration_kops"] > 0
    names = {r["point"]["name"] for r in baseline["points"]}
    assert names == {p.name for p in DEFAULT_MATRIX}
    for result in baseline["points"]:
        assert result["seconds"] > 0
        assert result["kinsts_per_s"] > 0
        if result["point"]["mode"] in ("core", "batch"):
            assert result["kcycles_per_s"] > 0


def test_throughput_gate(baseline):
    """Fresh measurement must stay within the regression threshold.

    The measured matrix is rebuilt from the baseline's own point specs,
    so a baseline regenerated with a different matrix stays gateable
    without editing this test.
    """
    from repro.config import envreg
    current_path = envreg.get("REPRO_PERF_CURRENT")
    if current_path:
        current = load_report(current_path)
    else:
        points = matrix_from_report(baseline)
        current = build_report(run_bench(points, repeats=3),
                               calibration=calibration_kops())
    failures = compare_reports(current, baseline,
                               threshold=_threshold())
    assert not failures, "; ".join(failures)


# ---------------------------------------------------------------------------
# Gate logic (pure, no measurement): the gate must actually fire.
# ---------------------------------------------------------------------------
def _scaled(report, factor):
    scaled = copy.deepcopy(report)
    for result in scaled["points"]:
        result["kinsts_per_s"] *= factor
        if "kcycles_per_s" in result:
            result["kcycles_per_s"] *= factor
    return scaled


def test_gate_flags_regression(baseline):
    """A 20% normalised drop fails at the default 15% threshold."""
    slower = _scaled(baseline, 0.80)
    failures = compare_reports(slower, baseline, threshold=0.15)
    assert len(failures) == len(baseline["points"])


def test_gate_passes_within_threshold(baseline):
    """A 10% drop (and any speedup) passes at the 15% threshold."""
    assert compare_reports(_scaled(baseline, 0.90), baseline,
                           threshold=0.15) == []
    assert compare_reports(_scaled(baseline, 1.50), baseline,
                           threshold=0.15) == []


def test_gate_normalises_by_calibration(baseline):
    """Half-speed machine: all raw metrics *and* the calibration drop
    2x -> normalised ratios are unchanged -> gate passes."""
    slower_machine = _scaled(baseline, 0.5)
    slower_machine["calibration_kops"] *= 0.5
    assert compare_reports(slower_machine, baseline,
                           threshold=0.15) == []


def test_baseline_is_valid_json_on_disk():
    """Guards against a hand-edited / merge-damaged baseline file."""
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    assert isinstance(raw["points"], list) and raw["points"]
