"""Figure 12: RGID (MSSR) vs Register Integration on GAP.

Paper: RGID outperforms RI on bc, bfs, cc and is comparable on pr,
sssp, tc; two squashed streams give the best overall results (deeper
streams increase memory-order violations).
"""

from repro.analysis import fig12_rgid_vs_ri, format_table
from repro.analysis.experiments import geomean_improvement


def test_fig12_rgid_vs_ri(benchmark, bench_scale, bench_jobs):
    results = benchmark.pedantic(
        fig12_rgid_vs_ri,
        kwargs={"scale": bench_scale, "jobs": bench_jobs},
        rounds=1, iterations=1)

    any_row = next(iter(results.values()))
    configs = list(any_row.keys())
    headers = ["bench"] + ["%s %sx%s" % c for c in configs]
    rows = []
    for bench, row in results.items():
        rows.append([bench] + ["%+.2f%%" % (100 * row[c]) for c in configs])
    print()
    print(format_table(headers, rows, title="Figure 12: RGID vs RI (GAP)"))

    rgid_avgs = {}
    ri_avgs = {}
    for config in configs:
        values = [row[config] for row in results.values()]
        avg = geomean_improvement(values)
        (rgid_avgs if config[0] == "rgid" else ri_avgs)[config] = avg
    best_rgid = max(rgid_avgs.items(), key=lambda kv: kv[1])
    best_ri = max(ri_avgs.items(), key=lambda kv: kv[1])
    print("best RGID config: %s (%+.2f%%)" % (best_rgid[0],
                                              100 * best_rgid[1]))
    print("best RI config  : %s (%+.2f%%)" % (best_ri[0], 100 * best_ri[1]))

    # Shape checks. Known deviation from the paper (see EXPERIMENTS.md):
    # with our small-footprint kernels RI's 64-set table rarely conflicts,
    # so RI tracks or beats RGID here, whereas the paper's SPEC-scale
    # footprints thrash it. We therefore assert the weaker, robust
    # properties: RGID's best configuration helps on GAP, and per the
    # paper RGID gains do not *degrade* when going 1 -> 2 streams.
    assert best_rgid[1] > 0.0
    assert rgid_avgs[("rgid", 2, 64)] >= rgid_avgs[("rgid", 1, 64)] - 0.003
