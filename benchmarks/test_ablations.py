"""Ablations for the design choices DESIGN.md calls out.

* memory-hazard scheme: load verification (paper's evaluated choice) vs
  the Bloom-filter alternative (Section 3.8.3) on xz, the workload whose
  memory-order violations the paper highlights;
* Section 3.9.1 multiple-block fetching under MSSR.
"""

from repro.analysis import run_workload
from repro.pipeline.config import CoreConfig, MSSRConfig
from repro.pipeline.core import O3Core
from repro.workloads import get_workload


def test_memory_hazard_scheme_ablation(benchmark, bench_scale):
    def run():
        scale = max(bench_scale, 0.1)
        _mod, prog = get_workload("xz").build(scale)
        base = O3Core(prog, CoreConfig()).run().stats
        verify = O3Core(prog, CoreConfig(mssr=MSSRConfig(
            memory_hazard_scheme="verify"))).run().stats
        bloom = O3Core(prog, CoreConfig(mssr=MSSRConfig(
            memory_hazard_scheme="bloom"))).run().stats
        return base, verify, bloom

    base, verify, bloom = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("xz memory-hazard ablation (paper: verification flushes make "
          "xz the one benchmark squash reuse can hurt):")
    for name, stats in (("baseline", base), ("mssr+verify", verify),
                        ("mssr+bloom", bloom)):
        print("  %-12s cycles=%-8d ipc=%.3f reused_loads=%d "
              "verify_flushes=%d"
              % (name, stats.cycles, stats.ipc, stats.reused_loads,
                 stats.verify_flushes))

    # The verification scheme is the one that can flush; bloom never does.
    assert bloom.verify_flushes == 0
    # Bloom conservatively reuses fewer (or equal) loads.
    assert bloom.reused_loads <= max(verify.reused_loads, 1)


def test_multi_block_fetch_ablation(benchmark, bench_scale):
    def run():
        scale = max(bench_scale, 0.1)
        _mod, prog = get_workload("nested-mispred").build(scale)
        narrow = O3Core(prog, CoreConfig(mssr=MSSRConfig())).run().stats
        wide = O3Core(prog, CoreConfig(fetch_blocks_per_cycle=2,
                                       mssr=MSSRConfig())).run().stats
        return narrow, wide

    narrow, wide = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("multiple-block fetching (Section 3.9.1) under MSSR:")
    for name, stats in (("1 block/cycle", narrow), ("2 blocks/cycle", wide)):
        print("  %-15s cycles=%-8d ipc=%.3f reuse=%d"
              % (name, stats.cycles, stats.ipc, stats.reuse_successes))
    # Extra fetch bandwidth must not hurt, and reuse keeps working.
    assert wide.cycles <= narrow.cycles * 1.01
    assert wide.reuse_successes > 0
