"""Benchmark note: SimPoint-sampled simulation speed and accuracy.

Acceptance target: a sampled run reaches <= 1/3 of the full detailed
run's wall clock on at least one SPEC-like workload, at usable
accuracy. Measured on leela at scale 2.0 (~110k dynamic instructions,
6000-instruction intervals, defaults otherwise):

    wall-clock ratio sampled/full : 0.29
    detailed instructions         : 21000 / 110176 (19%)
    IPC error vs full run         : +3.9%

The sampler's cost is (profiling + checkpointing, both emulator-speed)
plus k * (detail_warmup + interval) detailed instructions, so the
speedup grows with program length; at the micro suite's ~12k
instructions sampling does not pay yet (the same intervals cover most
of the run), which is why this note pins a long SPEC-like workload.

Wall clock is machine-dependent, so the hard assertion here is on the
deterministic detailed-instruction ratio (the wall-clock driver); the
measured wall ratio is printed and checked only against a loose bound
to stay robust on noisy CI machines.
"""

import time

from repro.pipeline.core import O3Core
from repro.sampling import SamplingSpec, run_sampled
from repro.workloads.registry import get_workload


def test_sampled_speed_note():
    _mod, prog = get_workload("leela").build(2.0)

    t0 = time.time()
    full = O3Core(prog).run()
    t_full = time.time() - t0

    spec = SamplingSpec(interval_insts=6000)
    t0 = time.time()
    res = run_sampled(prog, spec=spec)
    t_sampled = time.time() - t0

    err = (res.ipc - full.stats.ipc) / full.stats.ipc
    inst_ratio = res.detailed_insts / res.total_insts
    wall_ratio = t_sampled / t_full
    print()
    print("sampled-speed note: leela scale=2.0 interval=6000")
    print("  full    : IPC %.3f in %.2fs (%d insts)"
          % (full.stats.ipc, t_full, full.stats.committed_insts))
    print("  sampled : IPC %.3f in %.2fs (%d of %d insts detailed, "
          "k=%d of %d intervals)"
          % (res.ipc, t_sampled, res.detailed_insts, res.total_insts,
             res.selection.k, res.selection.num_intervals))
    print("  error %+.2f%%  inst ratio %.2f  wall ratio %.2f"
          % (100 * err, inst_ratio, wall_ratio))

    # The deterministic driver of the speedup: at most 1/3 of the
    # program is simulated in detail.
    assert inst_ratio <= 1.0 / 3.0
    # Wall clock tracks it; keep slack for CI noise (measured: 0.29).
    assert wall_ratio < 0.6
    # And the estimate stays usable.
    assert abs(err) < 0.10
