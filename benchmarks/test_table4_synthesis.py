"""Table 4: post-synthesis complexity of the two critical circuits.

Paper anchors (2 GHz, 0.7 V):

    reconvergence detection: 4x16 -> 13 levels / 2682 um^2 / 1.508 mW
                             4x32 -> 19 / 5283 / 2.984
                             4x64 -> 20 / 10369 / 5.909
    reuse test (64-entry SL): width 4 -> 28 / 3201 / 3.039
                              width 6 -> 32 / 4803 / 4.333
                              width 8 -> 41 / 6256 / 5.509

Our analytical model is calibrated on one row per circuit; the check is
that the *other* rows land near the paper and that the scaling trends
(linear area/power in WPB size, super-linear depth in width) hold.
"""

from repro.analysis import table4_synthesis, format_table

_PAPER_RECON = {"4x16": (13, 2682, 1.508), "4x32": (19, 5283, 2.984),
                "4x64": (20, 10369, 5.909)}
_PAPER_REUSE = {"width 4": (28, 3201, 3.039), "width 6": (32, 4803, 4.333),
                "width 8": (41, 6256, 5.509)}


def _print(rows, paper, title):
    table = []
    for r in rows:
        p_levels, p_area, p_power = paper[r["config"]]
        table.append([r["config"], r["logic_levels"], p_levels,
                      r["area_um2"], p_area, r["power_mw"], p_power])
    print(format_table(
        ["config", "levels", "(paper)", "area", "(paper)", "power",
         "(paper)"], table, title=title))
    print()


def test_table4_synthesis(benchmark):
    synth = benchmark.pedantic(table4_synthesis, rounds=1, iterations=1)
    print()
    _print(synth["reconvergence_detection"], _PAPER_RECON,
           "Table 4: reconvergence detection")
    _print(synth["reuse_test"], _PAPER_REUSE,
           "Table 4: reuse test (64-entry squash log)")

    recon = synth["reconvergence_detection"]
    reuse = synth["reuse_test"]

    # Area and power scale ~linearly with WPB capacity.
    assert 1.7 < recon[1]["area_um2"] / recon[0]["area_um2"] < 2.3
    assert 1.7 < recon[2]["area_um2"] / recon[1]["area_um2"] < 2.3

    # Reuse-test depth grows super-linearly toward width 8 (the serial
    # RGID-increment chain), area roughly linearly.
    assert reuse[0]["logic_levels"] < reuse[1]["logic_levels"] \
        < reuse[2]["logic_levels"]
    assert reuse[2]["area_um2"] < 2.5 * reuse[0]["area_um2"]

    # Absolute calibration stays within 30% of every paper anchor.
    for rows, paper in ((recon, _PAPER_RECON), (reuse, _PAPER_REUSE)):
        for r in rows:
            p_levels, p_area, p_power = paper[r["config"]]
            assert abs(r["area_um2"] - p_area) / p_area < 0.30, r
            assert abs(r["power_mw"] - p_power) / p_power < 0.30, r
            assert abs(r["logic_levels"] - p_levels) / p_levels < 0.45, r
